package experiments

import "testing"

// TestUpstreamLoopImprovesNonReporter is the acceptance test of the
// upstream sharing loop: after the reporting clients' observations fold
// into the day-0 -> day-1 delta, a client that never reported must see
// its mean RTT error strictly decrease vs the plain delta — and a single
// adversarial reporter must stay inside the median bound.
func TestUpstreamLoopImprovesNonReporter(t *testing.T) {
	l := NewLab(QuickConfig(42))
	res := UpstreamLoop(l, 0, 3)
	t.Logf("\n%s", res.Render())
	if res.Reporters < 3 {
		t.Fatalf("only %d reporters; the median bound needs at least 3", res.Reporters)
	}
	if res.Observations == 0 || res.Corrections == 0 {
		t.Fatalf("nothing aggregated: %+v", res)
	}
	if res.Pairs == 0 {
		t.Fatal("non-reporter has no held-out workload")
	}
	if res.ErrAfter >= res.ErrBefore {
		t.Fatalf("aggregated delta did not improve the non-reporter: before %.4f after %.4f",
			res.ErrBefore, res.ErrAfter)
	}
	if !res.AdvWithin {
		t.Fatalf("adversarial reporter escaped the median bound: shift %.2f ms", res.AdvMaxShiftMS)
	}
	if res.AdvMaxShiftMS > res.AdvMaxSpread {
		t.Fatalf("liar shift %.2f ms exceeds the honest spread %.2f ms", res.AdvMaxShiftMS, res.AdvMaxSpread)
	}
}

package experiments

import (
	"sort"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/feedback"
	"inano/internal/netsim"
)

// This file extracts the upstream day-roll loop — reporters probe served
// predictions, residuals aggregate, deltas are scored on a held-out
// client — into reusable pieces. UpstreamLoop composes them, and the
// scenario-replay harness (internal/scenario) drives them through
// adversarial timelines: reporter churn, poisoned residuals, rollbacks.

// SharedTargets is the day's shared probe-target set: every destination
// any validation pair names, sorted. The paper's clients traceroute a
// few hundred prefixes a day, so overlapping targets across reporters
// are the norm (and what gives the median its support).
func SharedTargets(dd *DayData) []netsim.Prefix {
	dstSet := make(map[netsim.Prefix]bool)
	for _, vp := range dd.Validation {
		dstSet[vp.Dst] = true
	}
	dsts := make([]netsim.Prefix, 0, len(dstSet))
	for d := range dstSet {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	return dsts
}

// RollObservations is one day-roll's worth of reporter feedback.
type RollObservations struct {
	// Agg is the live aggregator (callers may record more, e.g. a liar).
	Agg *feedback.Aggregator
	// Snapshot is the robust aggregate over every recorded observation.
	Snapshot feedback.ObservationSnapshot
	// Residuals is the fold-ready subset clearing the min-reporter bar.
	Residuals map[netsim.Prefix]float64
	// Honest holds each prefix's clamped per-reporter residuals, for
	// poisoning-bound checks.
	Honest map[netsim.Prefix][]float64
	// Reporters and Observations count what actually fed the aggregator.
	Reporters, Observations int
}

// Mutator optionally rewrites each residual before it is recorded; the
// scenario harness injects adversarial reporters through it. nil means
// honest reporting.
type Mutator func(src netsim.Prefix, dst netsim.Prefix, resid float64) float64

// CollectResiduals runs the reporting half of a day roll: each reporter
// measures day-`day` ground truth toward dsts, residuals are computed
// against the served (uncorrected) day atlas the way /v1/observations
// does, and the robust aggregate is returned. minReporters gates the
// fold (3 buys the median's single-liar bound).
func CollectResiduals(l *Lab, day int, reporters []netsim.Prefix, dsts []netsim.Prefix, minReporters int, mut Mutator) *RollObservations {
	dd := l.Day(day)
	serving := inano.FromAtlas(dd.Atlas.Clone())
	snap := serving.Snapshot()
	ro := &RollObservations{
		Agg:    feedback.NewAggregator(feedback.AggregatorConfig{}),
		Honest: make(map[netsim.Prefix][]float64),
	}
	for _, r := range reporters {
		srcCl, ok := snap.AttachmentCluster(r)
		if !ok {
			continue
		}
		ro.Reporters++
		for _, dst := range dsts {
			trueRTT, ok := l.W.TrueRTT(day, r, dst)
			if !ok {
				continue
			}
			info := snap.Query(r.HostIP(), dst.HostIP())
			if !info.Found {
				continue
			}
			resid := trueRTT - info.RTTMS
			if mut != nil {
				resid = mut(r, dst, resid)
			}
			ro.Agg.Record(srcCl, dst, resid)
			ro.Honest[dst] = append(ro.Honest[dst], clampResid(resid))
			ro.Observations++
		}
	}
	ro.Snapshot = ro.Agg.Snapshot(0)
	ro.Residuals = ro.Snapshot.Residuals(minReporters)
	return ro
}

// ScoreDelta applies d to the day-`from` atlas and scores src's held-out
// validation pairs against day-`to` ground truth, returning the mean
// capped relative RTT error, how many pairs had a prediction, and the
// workload size.
func ScoreDelta(l *Lab, from, to int, src netsim.Prefix, d *atlas.Delta) (meanErr float64, answered, pairs int) {
	a := l.Day(from).Atlas.Clone()
	if d != nil {
		a.Apply(d)
	}
	return ScoreAtlas(l, from, to, src, a)
}

// ScoreAtlas scores src's day-`from` held-out pairs against day-`to`
// truth when served from a. The atlas is used as given (not cloned).
func ScoreAtlas(l *Lab, from, to int, src netsim.Prefix, a *atlas.Atlas) (meanErr float64, answered, pairs int) {
	client := inano.FromAtlas(a)
	sum, n := 0.0, 0
	for _, vp := range l.Day(from).Validation {
		if vp.Src != src {
			continue
		}
		pairs++
		trueRTT, ok := l.W.TrueRTT(to, vp.Src, vp.Dst)
		if !ok {
			continue
		}
		n++
		info := client.QueryPrefix(vp.Src, vp.Dst)
		if info.Found {
			answered++
		}
		sum += feedback.RelErr(info.RTTMS, trueRTT, info.Found)
	}
	if n == 0 {
		return 0, 0, pairs
	}
	return sum / float64(n), answered, pairs
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§7) against the synthetic-Internet substrate. Each
// experiment returns a structured result with a Render method producing the
// rows/series the paper reports; cmd/inano-eval and the repository's
// benchmark harness drive them.
//
// Methodology follows §6.3: a random subset of vantage points act as
// representative end hosts, a hash-selected quarter of their traceroutes is
// held out as the validation set, and the atlas is built from everything
// else — so the predictor never saw the exact paths it is scored on, while
// the sources' remaining traceroutes populate the FROM_SRC plane.
package experiments

import (
	"sort"
	"sync"

	"inano/internal/atlas"
	"inano/internal/bgpsim"
	"inano/internal/cluster"
	"inano/internal/netsim"
	"inano/internal/pathcomp"
	"inano/internal/trace"
	"inano/sim"
)

// Config sizes the evaluation.
type Config struct {
	Scale sim.Scale
	Seed  int64
	// NumVPs is the vantage point count (paper: 197).
	NumVPs int
	// NumTargets caps probe targets (0 = every edge prefix; paper: 140K).
	NumTargets int
	// ValidationSrcs is how many vantage points act as representative
	// end hosts (paper: 37).
	ValidationSrcs int
	// HoldoutMod: a (src,dst) traceroute is held out for validation when
	// hash(src,dst)%HoldoutMod == 0.
	HoldoutMod int
}

// QuickConfig is a fast configuration for tests and benchmarks.
func QuickConfig(seed int64) Config {
	return Config{Scale: sim.Tiny, Seed: seed, NumVPs: 14, NumTargets: 90, ValidationSrcs: 6, HoldoutMod: 4}
}

// EvalConfig is the full paper-reproduction configuration.
func EvalConfig(seed int64) Config {
	return Config{Scale: sim.Eval, Seed: seed, NumVPs: 197, NumTargets: 2400, ValidationSrcs: 37, HoldoutMod: 4}
}

// MediumConfig sits between the two; cmd/inano-eval's default.
func MediumConfig(seed int64) Config {
	return Config{Scale: sim.Medium, Seed: seed, NumVPs: 60, NumTargets: 600, ValidationSrcs: 15, HoldoutMod: 4}
}

// VPair is one held-out validation pair.
type VPair struct {
	Src, Dst netsim.Prefix
}

// DayData bundles one day's campaign, atlas, and validation split.
type DayData struct {
	Day         *bgpsim.Day
	Meter       *trace.Meter
	AllTraces   []trace.Traceroute
	AtlasTraces []trace.Traceroute
	Validation  []VPair
	// ClientTraces are the validation sources' non-held-out traceroutes;
	// per §6.3 they feed only the FROM_SRC plane, never TO_DST.
	ClientTraces []trace.Traceroute
	Atlas        *atlas.Atlas
	Clusters     *cluster.Clustering
	ClusterOf    map[netsim.IP]cluster.ClusterID
	pathAtlas    *pathcomp.Atlas
	pathOnce     sync.Once
	popClusters  map[netsim.PoPID][]cluster.ClusterID
	popOnce      sync.Once
}

// Lab owns the world and per-day data, built lazily and cached.
type Lab struct {
	Cfg     Config
	W       *sim.World
	VPs     []netsim.Prefix
	Targets []netsim.Prefix
	// ValSrcs are the representative end hosts.
	ValSrcs []netsim.Prefix

	mu   sync.Mutex
	days map[int]*DayData
}

// NewLab generates the world and fixes the campaign population.
func NewLab(cfg Config) *Lab {
	w := sim.NewWorld(cfg.Scale, cfg.Seed)
	vps := w.VantagePoints(cfg.NumVPs)
	targets := w.EdgePrefixes()
	if cfg.NumTargets > 0 && len(targets) > cfg.NumTargets {
		targets = targets[:cfg.NumTargets]
	}
	// Targets must include the vantage points' own prefixes so reverse
	// paths toward them are predictable (the paper probes ~90% of the
	// edge, which covers PlanetLab's prefixes).
	targets = append([]netsim.Prefix(nil), targets...)
	seen := make(map[netsim.Prefix]bool, len(targets))
	for _, p := range targets {
		seen[p] = true
	}
	for _, vp := range vps {
		if !seen[vp] {
			targets = append(targets, vp)
			seen[vp] = true
		}
	}
	l := &Lab{
		Cfg:     cfg,
		W:       w,
		VPs:     vps,
		Targets: targets,
		days:    make(map[int]*DayData),
	}
	n := cfg.ValidationSrcs
	if n > len(vps) {
		n = len(vps)
	}
	l.ValSrcs = vps[:n]
	return l
}

// heldOut reports whether the (src,dst) traceroute belongs to the
// validation set.
func (l *Lab) heldOut(src, dst netsim.Prefix) bool {
	if l.Cfg.HoldoutMod <= 1 {
		return false
	}
	h := uint64(src)*0x9e3779b97f4a7c15 ^ uint64(dst)*0xbf58476d1ce4e5b9 ^ uint64(l.Cfg.Seed)
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return h%uint64(l.Cfg.HoldoutMod) == 0
}

func (l *Lab) isValSrc(p netsim.Prefix) bool {
	for _, s := range l.ValSrcs {
		if s == p {
			return true
		}
	}
	return false
}

// Day builds (or returns) everything for one simulated day.
func (l *Lab) Day(d int) *DayData {
	l.mu.Lock()
	if dd, ok := l.days[d]; ok {
		l.mu.Unlock()
		return dd
	}
	l.mu.Unlock()

	c := l.W.Measure(sim.CampaignOptions{Day: d, VPs: l.VPs, Targets: l.Targets})
	dd := &DayData{
		Day:       l.W.Sim.Day(d),
		Meter:     c.Meter(),
		AllTraces: c.VPTraces,
	}
	// Per §6.3: a validation source's held-out traceroutes become the
	// validation set; its remaining traceroutes go to the FROM_SRC plane
	// only (the paper: "links from 100 other randomly chosen traceroutes
	// from this source in the FROM_SRC plane"), while the other vantage
	// points' traceroutes form TO_DST.
	var clientTraces []trace.Traceroute
	for _, tr := range c.VPTraces {
		fromVal := l.isValSrc(tr.Src)
		if fromVal && l.heldOut(tr.Src, tr.Dst) {
			if tr.Src != tr.Dst {
				dd.Validation = append(dd.Validation, VPair{Src: tr.Src, Dst: tr.Dst})
			}
			continue
		}
		if fromVal {
			clientTraces = append(clientTraces, tr)
		} else {
			dd.AtlasTraces = append(dd.AtlasTraces, tr)
		}
	}
	dd.ClientTraces = clientTraces
	// Cluster today's interfaces, then stabilize IDs against the previous
	// day's clustering — the server's persistent registry — so deltas
	// compare like with like.
	var ips []netsim.IP
	collect := func(trs []trace.Traceroute) {
		for _, tr := range trs {
			for _, h := range tr.Hops {
				if h.IP != 0 {
					ips = append(ips, h.IP)
				}
			}
		}
	}
	collect(dd.AtlasTraces)
	collect(clientTraces)
	cl := cluster.Cluster(l.W.Top, ips, cluster.DefaultConfig())
	if d > 0 {
		cl = cluster.Stabilize(cl, l.Day(d-1).Clusters)
	}
	dd.Clusters = cl
	dd.ClusterOf = cl.ClusterOf
	dd.Atlas = atlas.Build(atlas.BuildInput{
		Top:          l.W.Top,
		Day:          dd.Day,
		Meter:        dd.Meter,
		VPTraces:     dd.AtlasTraces,
		ClientTraces: clientTraces,
		BGPFeeds:     atlas.DefaultFeeds(l.W.Top, 8),
		ClusterCfg:   cluster.DefaultConfig(),
		Clusters:     cl,
	})

	l.mu.Lock()
	l.days[d] = dd
	l.mu.Unlock()
	return dd
}

// PathAtlas lazily builds the iPlane path-composition baseline's atlas for
// the day. It includes the validation sources' kept traceroutes: path
// composition's first segment is "a path out from the source", which in the
// paper comes from the same FROM_SRC measurements.
func (dd *DayData) PathAtlas() *pathcomp.Atlas {
	dd.pathOnce.Do(func() {
		all := make([]trace.Traceroute, 0, len(dd.AtlasTraces)+len(dd.ClientTraces))
		all = append(all, dd.AtlasTraces...)
		all = append(all, dd.ClientTraces...)
		dd.pathAtlas = pathcomp.BuildFromTraces(all, dd.ClusterOf, dd.Atlas)
	})
	return dd.pathAtlas
}

// ObservedASPaths extracts loop-free AS paths from the day's contributed
// traces (both planes).
func (dd *DayData) ObservedASPaths(prefixAS map[netsim.Prefix]netsim.ASN) [][]netsim.ASN {
	var out [][]netsim.ASN
	collect := func(trs []trace.Traceroute) {
		for _, tr := range trs {
			ips := make([]netsim.IP, len(tr.Hops))
			for i, h := range tr.Hops {
				ips[i] = h.IP
			}
			if p, ok := cluster.ASPathOf(ips, prefixAS); ok && len(p) >= 2 {
				out = append(out, p)
			}
		}
	}
	collect(dd.AtlasTraces)
	collect(dd.ClientTraces)
	return out
}

// equalASPath compares two AS paths.
func equalASPath(a, b []netsim.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// median returns the p-quantile (0..1) of xs (copied, then sorted).
func quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	i := int(p * float64(len(cp)-1))
	return cp[i]
}

// cdfFrac returns the fraction of xs at or below v.
func cdfFrac(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

package experiments

import (
	"sort"
	"testing"

	"inano/internal/netsim"
)

func TestSharedTargets(t *testing.T) {
	dd := testLab.Day(0)
	dsts := SharedTargets(dd)
	if len(dsts) == 0 {
		t.Fatal("no shared targets")
	}
	if !sort.SliceIsSorted(dsts, func(i, j int) bool { return dsts[i] < dsts[j] }) {
		t.Fatal("targets not sorted")
	}
	seen := make(map[netsim.Prefix]bool, len(dsts))
	want := make(map[netsim.Prefix]bool)
	for _, d := range dsts {
		if seen[d] {
			t.Fatalf("duplicate target %v", d)
		}
		seen[d] = true
	}
	for _, vp := range dd.Validation {
		want[vp.Dst] = true
		if !seen[vp.Dst] {
			t.Fatalf("validation destination %v missing from shared targets", vp.Dst)
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("%d targets but %d distinct validation destinations", len(seen), len(want))
	}
}

func TestCollectResidualsHonest(t *testing.T) {
	l := testLab
	dsts := SharedTargets(l.Day(0))
	ro := CollectResiduals(l, 0, l.ValSrcs[1:], dsts, 2, nil)
	if ro.Reporters == 0 || ro.Observations == 0 {
		t.Fatalf("no feedback collected: %+v", ro)
	}
	if len(ro.Residuals) == 0 {
		t.Fatal("no residual cleared the min-reporter bar")
	}
	for dst := range ro.Residuals {
		if len(ro.Honest[dst]) < 2 {
			t.Fatalf("folded residual for %v backed by %d < 2 reporters", dst, len(ro.Honest[dst]))
		}
	}
}

// TestCollectResidualsMutator proves the poison hook reaches the
// aggregate: shifting every residual by a constant shifts the robust
// median of every folded destination.
func TestCollectResidualsMutator(t *testing.T) {
	l := testLab
	dsts := SharedTargets(l.Day(0))
	reps := l.ValSrcs[1:]
	honest := CollectResiduals(l, 0, reps, dsts, 2, nil)
	poisoned := CollectResiduals(l, 0, reps, dsts, 2,
		func(_, _ netsim.Prefix, resid float64) float64 { return resid + 50 })
	if poisoned.Observations != honest.Observations {
		t.Fatalf("mutator changed observation count: %d vs %d", poisoned.Observations, honest.Observations)
	}
	moved := 0
	for dst, hv := range honest.Residuals {
		pv, ok := poisoned.Residuals[dst]
		if !ok {
			continue
		}
		if pv > hv+1 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("uniform poisoning left every folded residual unchanged")
	}
}

func TestScoreDeltaNilMatchesScoreAtlas(t *testing.T) {
	l := testLab
	src := l.ValSrcs[0]
	e1, a1, p1 := ScoreDelta(l, 0, 1, src, nil)
	e2, a2, p2 := ScoreAtlas(l, 0, 1, src, l.Day(0).Atlas.Clone())
	if e1 != e2 || a1 != a2 || p1 != p2 {
		t.Fatalf("nil-delta score (%v,%d,%d) differs from direct atlas score (%v,%d,%d)",
			e1, a1, p1, e2, a2, p2)
	}
	if p1 == 0 {
		t.Fatal("no validation pairs for the first validation source")
	}
}

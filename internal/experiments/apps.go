package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	inano "inano"
	"inano/internal/netsim"
	"inano/internal/tcpmodel"
	"inano/internal/vivaldi"
)

// Fig9Strategy is one replica-selection strategy's download times.
type Fig9Strategy struct {
	Name  string
	Times []float64 // per client, ms (sorted)
}

// Fig9Result reproduces Fig. 9: CDN replica selection with 5 random
// replicas per client, for a small (9a) and a large (9b) file.
type Fig9Result struct {
	SizeBytes  int
	Clients    int
	Strategies []Fig9Strategy
}

// Fig9CDN emulates the client-based CDN experiment (§7.1). Download times
// come from the PFTK/slow-start transfer model evaluated on ground-truth
// RTT and loss of the chosen replica path (the stand-in for real transfers
// from Akamai hosts).
func Fig9CDN(l *Lab, sizeBytes, numClients, replicasPerClient int) Fig9Result {
	dd := l.Day(0)
	client := inano.FromAtlas(dd.Atlas)
	params := tcpmodel.DefaultParams()
	rng := rand.New(rand.NewSource(l.Cfg.Seed * 7919))

	// Replica pool: well-connected prefixes (the Akamai stand-ins): use
	// the vantage-point population beyond the validation sources.
	pool := l.Targets
	clients := l.VPs
	if numClients > len(clients) {
		numClients = len(clients)
	}

	// Vivaldi and geo selectors as comparators.
	hostSet := map[netsim.Prefix]bool{}
	for _, c := range clients[:numClients] {
		hostSet[c] = true
	}
	// Pre-draw replica sets so every strategy sees the same choices.
	replicaSets := make([][]netsim.Prefix, numClients)
	for i := 0; i < numClients; i++ {
		set := make([]netsim.Prefix, 0, replicasPerClient)
		seen := map[netsim.Prefix]bool{clients[i]: true}
		for len(set) < replicasPerClient {
			r := pool[rng.Intn(len(pool))]
			if !seen[r] {
				seen[r] = true
				set = append(set, r)
				hostSet[r] = true
			}
		}
		replicaSets[i] = set
	}
	hosts := make([]netsim.Prefix, 0, len(hostSet))
	for p := range hostSet {
		hosts = append(hosts, p)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	space := vivaldi.Train(hosts, func(a, b netsim.Prefix) (float64, bool) {
		return dd.Day.RTT(a, b)
	}, vivaldi.DefaultParams(l.Cfg.Seed))
	geo := vivaldi.NewGeoSelector(l.W.Top, 0)

	// downloadTime evaluates the true transfer time from a replica.
	downloadTime := func(cl, replica netsim.Prefix) (float64, bool) {
		rtt, ok1 := dd.Day.RTT(cl, replica)
		loss, ok2 := dd.Day.RTLoss(cl, replica)
		if !ok1 || !ok2 {
			return 0, false
		}
		return tcpmodel.TransferTimeMS(sizeBytes, rtt, loss, params), true
	}

	strategies := []struct {
		name string
		pick func(cl netsim.Prefix, reps []netsim.Prefix) (netsim.Prefix, bool)
	}{
		{"optimal", func(cl netsim.Prefix, reps []netsim.Prefix) (netsim.Prefix, bool) {
			best, bestT, ok := netsim.Prefix(0), 0.0, false
			for _, r := range reps {
				if t, k := downloadTime(cl, r); k && (!ok || t < bestT) {
					best, bestT, ok = r, t, true
				}
			}
			return best, ok
		}},
		{"measured latency", func(cl netsim.Prefix, reps []netsim.Prefix) (netsim.Prefix, bool) {
			best, bestT, ok := netsim.Prefix(0), 0.0, false
			for _, r := range reps {
				if t, k := dd.Day.RTT(cl, r); k && (!ok || t < bestT) {
					best, bestT, ok = r, t, true
				}
			}
			return best, ok
		}},
		{"iNano", func(cl netsim.Prefix, reps []netsim.Prefix) (netsim.Prefix, bool) {
			return client.BestReplica(cl, reps, sizeBytes)
		}},
		{"Vivaldi", func(cl netsim.Prefix, reps []netsim.Prefix) (netsim.Prefix, bool) {
			best, bestT, ok := netsim.Prefix(0), 0.0, false
			for _, r := range reps {
				if t, k := space.Estimate(cl, r); k && (!ok || t < bestT) {
					best, bestT, ok = r, t, true
				}
			}
			return best, ok
		}},
		{"OASIS-like (geo)", func(cl netsim.Prefix, reps []netsim.Prefix) (netsim.Prefix, bool) {
			return geo.Best(cl, reps)
		}},
		{"random", func(cl netsim.Prefix, reps []netsim.Prefix) (netsim.Prefix, bool) {
			if len(reps) == 0 {
				return 0, false
			}
			return reps[int(cl)%len(reps)], true
		}},
	}
	res := Fig9Result{SizeBytes: sizeBytes, Clients: numClients}
	for _, s := range strategies {
		st := Fig9Strategy{Name: s.name}
		for i := 0; i < numClients; i++ {
			r, ok := s.pick(clients[i], replicaSets[i])
			if !ok {
				continue
			}
			if t, k := downloadTime(clients[i], r); k {
				st.Times = append(st.Times, t)
			}
		}
		sort.Float64s(st.Times)
		res.Strategies = append(res.Strategies, st)
	}
	return res
}

// Render formats Fig. 9 as per-strategy quantiles.
func (r Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9 (%dKB file): download time per strategy over %d clients, 5 random replicas each\n",
		r.SizeBytes/1000, r.Clients)
	fmt.Fprintf(&b, "%-18s %10s %10s %10s\n", "strategy", "p25(ms)", "median(ms)", "p75(ms)")
	var optMedian float64
	for _, s := range r.Strategies {
		if s.Name == "optimal" {
			optMedian = quantile(s.Times, 0.5)
		}
	}
	for _, s := range r.Strategies {
		med := quantile(s.Times, 0.5)
		ratio := ""
		if optMedian > 0 {
			ratio = fmt.Sprintf("  (%.2fx optimal)", med/optMedian)
		}
		fmt.Fprintf(&b, "%-18s %10.0f %10.0f %10.0f%s\n",
			s.Name, quantile(s.Times, 0.25), med, quantile(s.Times, 0.75), ratio)
	}
	fmt.Fprintf(&b, "(paper: iNano near-optimal median for both sizes, ahead of Vivaldi/OASIS)\n")
	return b.String()
}

// Fig10Strategy is one relay-selection strategy's observed call loss rates.
type Fig10Strategy struct {
	Name   string
	Losses []float64 // per call, sorted
	MOS    []float64
}

// Fig10Result reproduces Fig. 10: VoIP relay selection.
type Fig10Result struct {
	Calls      int
	Strategies []Fig10Strategy
}

// Fig10VoIP emulates §7.2: random (src,dst) calls relayed through a peer;
// strategies pick the relay, and the observed quality is the ground-truth
// loss through it.
func Fig10VoIP(l *Lab, numCalls int) Fig10Result {
	dd := l.Day(0)
	client := inano.FromAtlas(dd.Atlas)
	rng := rand.New(rand.NewSource(l.Cfg.Seed * 104729))
	hosts := l.VPs

	trueLegs := func(src, relay, dst netsim.Prefix) (loss, oneway float64, ok bool) {
		l1, ok1 := dd.Day.RTLoss(src, relay)
		l2, ok2 := dd.Day.RTLoss(relay, dst)
		r1, ok3 := dd.Day.RTT(src, relay)
		r2, ok4 := dd.Day.RTT(relay, dst)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return 0, 0, false
		}
		return 1 - (1-l1)*(1-l2), (r1 + r2) / 2, true
	}

	type call struct{ src, dst netsim.Prefix }
	calls := make([]call, 0, numCalls)
	for len(calls) < numCalls {
		s := hosts[rng.Intn(len(hosts))]
		d := hosts[rng.Intn(len(hosts))]
		if s != d {
			calls = append(calls, call{s, d})
		}
	}
	relaysFor := func(c call) []netsim.Prefix {
		out := make([]netsim.Prefix, 0, len(hosts)-2)
		for _, h := range hosts {
			if h != c.src && h != c.dst {
				out = append(out, h)
			}
		}
		return out
	}
	closestTo := func(anchor netsim.Prefix, relays []netsim.Prefix) (netsim.Prefix, bool) {
		best, bestT, ok := netsim.Prefix(0), 0.0, false
		for _, r := range relays {
			if t, k := dd.Day.RTT(anchor, r); k && (!ok || t < bestT) {
				best, bestT, ok = r, t, true
			}
		}
		return best, ok
	}
	strategies := []struct {
		name string
		pick func(c call, relays []netsim.Prefix) (netsim.Prefix, bool)
	}{
		{"iNano", func(c call, relays []netsim.Prefix) (netsim.Prefix, bool) {
			return client.BestRelay(c.src, c.dst, relays, 10)
		}},
		{"closest to source", func(c call, relays []netsim.Prefix) (netsim.Prefix, bool) {
			return closestTo(c.src, relays)
		}},
		{"closest to dest", func(c call, relays []netsim.Prefix) (netsim.Prefix, bool) {
			return closestTo(c.dst, relays)
		}},
		{"random", func(c call, relays []netsim.Prefix) (netsim.Prefix, bool) {
			if len(relays) == 0 {
				return 0, false
			}
			return relays[(int(c.src)+int(c.dst))%len(relays)], true
		}},
	}
	res := Fig10Result{Calls: len(calls)}
	for _, s := range strategies {
		st := Fig10Strategy{Name: s.name}
		for _, c := range calls {
			relay, ok := s.pick(c, relaysFor(c))
			if !ok {
				continue
			}
			loss, oneway, ok := trueLegs(c.src, relay, c.dst)
			if !ok {
				continue
			}
			st.Losses = append(st.Losses, loss)
			st.MOS = append(st.MOS, mosOf(oneway, loss))
		}
		sort.Float64s(st.Losses)
		res.Strategies = append(res.Strategies, st)
	}
	return res
}

// Render formats Fig. 10.
func (r Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10: VoIP relay selection over %d calls (observed loss through chosen relay)\n", r.Calls)
	fmt.Fprintf(&b, "%-18s %10s %10s %12s %10s\n", "strategy", "median", "p90", "lossless", "meanMOS")
	for _, s := range r.Strategies {
		meanMOS := 0.0
		for _, m := range s.MOS {
			meanMOS += m
		}
		if len(s.MOS) > 0 {
			meanMOS /= float64(len(s.MOS))
		}
		fmt.Fprintf(&b, "%-18s %10.4f %10.4f %11.0f%% %10.2f\n",
			s.Name, quantile(s.Losses, 0.5), quantile(s.Losses, 0.9),
			cdfFrac(s.Losses, 0.0005)*100, meanMOS)
	}
	fmt.Fprintf(&b, "(paper: iNano relays see significantly less loss than all alternatives)\n")
	return b.String()
}

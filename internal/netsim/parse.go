package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseIPv4 parses a strict dotted-quad IPv4 address (no leading zeros,
// exactly four octets). It lives here, next to the IP type, so every
// layer that accepts addresses from the wire — feedback ingest, the
// daemon, the cluster router — agrees on one parser.
func ParseIPv4(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("bad IPv4 address %q", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return IP(ip), nil
}

package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ScaleConfig sizes an internet-scale synthetic world. Unlike Config's
// fully materialized tiered worlds (PoPs, routers, per-interface maps),
// a ScaleWorld is a compact array-backed AS graph with an arithmetic
// prefix/address plan: everything a streamed measurement campaign needs
// is derived on demand from the seed, so a ~1M-prefix world fits in a
// few hundred megabytes and re-emits its traceroute stream
// deterministically as many times as an out-of-core build wants it.
type ScaleConfig struct {
	Seed int64
	// ASes is the autonomous-system count.
	ASes int
	// Tier1 is the size of the seed clique of peered backbone ASes.
	Tier1 int
	// MinDegree is how many provider links each arriving AS requests;
	// preferential attachment over the running degree distribution makes
	// the final degrees power-law distributed (Barabási–Albert).
	MinDegree int
	// PeerFrac adds roughly PeerFrac*ASes settlement-free peer edges on
	// top of the customer/provider tree.
	PeerFrac float64
	// Prefixes is the edge-prefix count, distributed Pareto-style across
	// the non-tier-1 ASes.
	Prefixes int
	// MSPerUnit converts map distance to one-way link latency;
	// LinkBaseMS is the per-hop forwarding floor.
	MSPerUnit  float64
	LinkBaseMS float64
}

// Address plan: infrastructure interfaces live in one /24 per AS starting
// at ScaleInfraBase (16.0.0.0/24 onward), edge prefixes are numbered
// densely from ScaleEdgeBase (64.0.0.0/24 onward). Both regions fit the
// 24-bit prefix space with room for a million ASes and several million
// edge prefixes.
const (
	ScaleInfraBase Prefix = 1 << 20
	ScaleEdgeBase  Prefix = 4 << 20
)

// maxChainLen bounds provider-chain depth; Generate re-homes any AS whose
// chain would exceed it, so route synthesis runs on small fixed buffers.
const maxChainLen = 48

// DefaultScaleConfig is a medium scale world for tests and local runs.
func DefaultScaleConfig(seed int64) ScaleConfig {
	return ScaleConfig{
		Seed: seed, ASes: 3000, Tier1: 8, MinDegree: 2, PeerFrac: 0.15,
		Prefixes: 20000, MSPerUnit: 0.02, LinkBaseMS: 0.4,
	}
}

// MillionScaleConfig is the CI-nightly world: ~1M edge prefixes across
// 50K ASes.
func MillionScaleConfig(seed int64) ScaleConfig {
	return ScaleConfig{
		Seed: seed, ASes: 50000, Tier1: 12, MinDegree: 2, PeerFrac: 0.2,
		Prefixes: 1_000_000, MSPerUnit: 0.02, LinkBaseMS: 0.4,
	}
}

// Validate checks the configuration bounds.
func (c ScaleConfig) Validate() error {
	switch {
	case c.Tier1 < 2:
		return fmt.Errorf("scale config: Tier1 %d < 2", c.Tier1)
	case c.ASes <= c.Tier1:
		return fmt.Errorf("scale config: ASes %d must exceed Tier1 %d", c.ASes, c.Tier1)
	case c.ASes > int(ScaleEdgeBase-ScaleInfraBase):
		return fmt.Errorf("scale config: ASes %d exceeds the infra address region", c.ASes)
	case c.MinDegree < 1:
		return fmt.Errorf("scale config: MinDegree %d < 1", c.MinDegree)
	case c.PeerFrac < 0 || c.PeerFrac > 1:
		return fmt.Errorf("scale config: PeerFrac %v outside [0,1]", c.PeerFrac)
	case c.Prefixes < 1:
		return fmt.Errorf("scale config: Prefixes %d < 1", c.Prefixes)
	case c.Prefixes > int(1<<24-uint32(ScaleEdgeBase)):
		return fmt.Errorf("scale config: Prefixes %d exceeds the edge address region", c.Prefixes)
	case c.MSPerUnit <= 0 || c.LinkBaseMS < 0:
		return fmt.Errorf("scale config: non-positive latency parameters")
	}
	return nil
}

// ScaleWorld is a generated internet-scale AS graph: ASes are dense
// indices 0..ASes-1 (ASN = index+1), edges carry customer/provider or
// peer relationships, and prefixes/interfaces are pure arithmetic over
// the plan above. All derived quantities (routes, latencies, loss,
// interface addresses) are deterministic functions of the seed.
type ScaleWorld struct {
	Cfg ScaleConfig

	// X, Y are AS map coordinates; Deg the final degrees.
	X, Y []float32
	Deg  []int32
	// Edge i joins EdgeA[i] and EdgeB[i]; EdgeB is EdgeA's provider
	// unless EdgePeer[i].
	EdgeA, EdgeB []int32
	EdgePeer     []bool

	edgeAt   map[uint64]int32 // unordered idx pair -> edge
	upParent []int32          // chosen provider per AS; -1 for tier-1s
	// prefStart is the cumulative edge-prefix count per AS: AS i owns
	// edge prefixes [prefStart[i], prefStart[i+1]).
	prefStart []int32
	owners    []int32 // ASes owning at least one edge prefix, ascending
}

func scalePairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// scaleMix is the deterministic hash behind every derived coin and value.
func scaleMix(seed int64, salt, a, b uint64) uint64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 ^ salt*0xbf58476d1ce4e5b9 ^ a*0x94d049bb133111eb ^ b*0xda942042e4dd58b5
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// scaleFrac maps a hash to [0,1).
func scaleFrac(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// GenerateScale builds the world. It panics on an invalid config, which
// is always a programming error (Validate reports reasons).
func GenerateScale(c ScaleConfig) *ScaleWorld {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5ca1e))
	n := c.ASes
	w := &ScaleWorld{
		Cfg:    c,
		X:      make([]float32, n),
		Y:      make([]float32, n),
		Deg:    make([]int32, n),
		edgeAt: make(map[uint64]int32, n*(c.MinDegree+1)),
	}
	for i := 0; i < n; i++ {
		w.X[i] = float32(rng.Float64() * 5000)
		w.Y[i] = float32(rng.Float64() * 3000)
	}

	// targets is the preferential-attachment multiset: every edge pushes
	// both endpoints, so attachment probability tracks current degree.
	targets := make([]int32, 0, 2*n*(c.MinDegree+1))
	addEdge := func(a, b int32, peer bool) bool {
		if a == b {
			return false
		}
		k := scalePairKey(a, b)
		if _, ok := w.edgeAt[k]; ok {
			return false
		}
		w.edgeAt[k] = int32(len(w.EdgeA))
		w.EdgeA = append(w.EdgeA, a)
		w.EdgeB = append(w.EdgeB, b)
		w.EdgePeer = append(w.EdgePeer, peer)
		w.Deg[a]++
		w.Deg[b]++
		targets = append(targets, a, b)
		return true
	}

	// Seed clique of peered tier-1s.
	t1 := int32(c.Tier1)
	for i := int32(0); i < t1; i++ {
		for j := i + 1; j < t1; j++ {
			addEdge(i, j, true)
		}
	}
	// Every later AS buys transit from MinDegree existing ASes, chosen by
	// preferential attachment; a tier-1 fallback guarantees connectivity.
	for i := t1; i < int32(n); i++ {
		added := 0
		for tries := 0; added < c.MinDegree && tries < 8*c.MinDegree; tries++ {
			if addEdge(i, targets[rng.Intn(len(targets))], false) {
				added++
			}
		}
		if added == 0 {
			addEdge(i, int32(rng.Intn(int(t1))), false)
		}
	}
	// Settlement-free peer edges on top.
	for k := int(c.PeerFrac * float64(n)); k > 0; k-- {
		a := t1 + int32(rng.Intn(n-int(t1)))
		addEdge(a, targets[rng.Intn(len(targets))], true)
	}

	// Pick each AS's default provider (highest final degree, ties to the
	// lower index); chains strictly decrease in index, ending at tier-1s.
	w.upParent = make([]int32, n)
	for i := range w.upParent {
		w.upParent[i] = -1
	}
	for e := range w.EdgeA {
		if w.EdgePeer[e] {
			continue
		}
		cust, prov := w.EdgeA[e], w.EdgeB[e]
		cur := w.upParent[cust]
		if cur < 0 || w.Deg[prov] > w.Deg[cur] || (w.Deg[prov] == w.Deg[cur] && prov < cur) {
			w.upParent[cust] = prov
		}
	}
	// Bound chain depth: re-home any AS whose chain would run too deep
	// directly onto a tier-1 (adding the provider edge if needed).
	depth := make([]int32, n)
	for i := t1; i < int32(n); i++ {
		p := w.upParent[i]
		depth[i] = depth[p] + 1
		if depth[i] > maxChainLen-8 {
			start := int32(rng.Intn(int(t1)))
			for off := int32(0); off < t1; off++ {
				t := (start + off) % t1
				if e, ok := w.edgeAt[scalePairKey(i, t)]; ok {
					if !w.EdgePeer[e] && w.EdgeA[e] == i {
						w.upParent[i], depth[i] = t, 1
						break
					}
					continue
				}
				if addEdge(i, t, false) {
					w.upParent[i], depth[i] = t, 1
					break
				}
			}
		}
	}

	// Pareto-distributed edge-prefix counts over non-tier-1 ASes.
	wgt := make([]float64, n)
	var totalW float64
	for i := int(t1); i < n; i++ {
		u := rng.Float64()
		wgt[i] = math.Pow(1-0.999*u, -0.7)
		totalW += wgt[i]
	}
	w.prefStart = make([]int32, n+1)
	counts := make([]int32, n)
	assigned := 0
	for i := int(t1); i < n; i++ {
		k := int(float64(c.Prefixes) * wgt[i] / totalW)
		counts[i] = int32(k)
		assigned += k
	}
	for i := 0; assigned < c.Prefixes; i++ {
		counts[int(t1)+i%(n-int(t1))]++
		assigned++
	}
	for i := 0; i < n; i++ {
		w.prefStart[i+1] = w.prefStart[i] + counts[i]
		if counts[i] > 0 {
			w.owners = append(w.owners, int32(i))
		}
	}
	return w
}

// NumASes returns the AS count.
func (w *ScaleWorld) NumASes() int { return len(w.X) }

// NumEdges returns the AS-graph edge count.
func (w *ScaleWorld) NumEdges() int { return len(w.EdgeA) }

// NumPrefixes returns the edge-prefix count.
func (w *ScaleWorld) NumPrefixes() int { return int(w.prefStart[len(w.X)]) }

// EdgeBetween returns the edge joining ASes a and b, or -1.
func (w *ScaleWorld) EdgeBetween(a, b int32) int32 {
	if e, ok := w.edgeAt[scalePairKey(a, b)]; ok {
		return e
	}
	return -1
}

// RelOf returns b's relationship from a's perspective.
func (w *ScaleWorld) RelOf(a, b int32) Rel {
	e := w.EdgeBetween(a, b)
	if e < 0 {
		return RelNone
	}
	if w.EdgePeer[e] {
		return RelPeer
	}
	if w.EdgeA[e] == a {
		return RelProvider // b is a's provider
	}
	return RelCustomer
}

// OriginIdx maps a prefix to its owning AS index, or -1.
func (w *ScaleWorld) OriginIdx(p Prefix) int32 {
	n := len(w.X)
	if p >= ScaleInfraBase && p < ScaleInfraBase+Prefix(n) {
		return int32(p - ScaleInfraBase)
	}
	if p >= ScaleEdgeBase {
		j := int32(p - ScaleEdgeBase)
		if j < w.prefStart[n] {
			i := sort.Search(n, func(i int) bool { return w.prefStart[i+1] > j })
			return int32(i)
		}
	}
	return -1
}

// OriginAS maps a prefix to its origin ASN (index+1), or 0.
func (w *ScaleWorld) OriginAS(p Prefix) ASN {
	if i := w.OriginIdx(p); i >= 0 {
		return ASN(i + 1)
	}
	return 0
}

// IfaceIP returns the stable infrastructure interface of AS `at` facing
// neighbor AS `from` (use from==at for the AS's own access gateway).
func (w *ScaleWorld) IfaceIP(at, from int32) IP {
	h := scaleMix(w.Cfg.Seed, 0x1FACE, uint64(uint32(at)), uint64(uint32(from)))
	return (ScaleInfraBase + Prefix(at)).FirstIP() + IP(1+h%250)
}

// ASOfIface maps an infrastructure interface back to its AS index, or -1.
func (w *ScaleWorld) ASOfIface(ip IP) int32 {
	p := PrefixOf(ip)
	if p >= ScaleInfraBase && p < ScaleInfraBase+Prefix(len(w.X)) {
		return int32(p - ScaleInfraBase)
	}
	return -1
}

// LinkLatencyMS is the ground-truth one-way latency of edge e: map
// distance plus the forwarding floor, with a stable ±10% per-edge factor
// decorrelating latency from pure geometry.
func (w *ScaleWorld) LinkLatencyMS(e int32) float64 {
	a, b := w.EdgeA[e], w.EdgeB[e]
	dx := float64(w.X[a] - w.X[b])
	dy := float64(w.Y[a] - w.Y[b])
	lat := w.Cfg.LinkBaseMS + math.Sqrt(dx*dx+dy*dy)*w.Cfg.MSPerUnit
	return lat * (0.9 + 0.2*scaleFrac(scaleMix(w.Cfg.Seed, 0x1A7, uint64(e), 0)))
}

// LinkLossRate is the ground-truth loss rate of edge e: ~3% of edges are
// lossy with rates up to ~12%.
func (w *ScaleWorld) LinkLossRate(e int32) float64 {
	h := scaleMix(w.Cfg.Seed, 0x1055, uint64(e), 0)
	if scaleFrac(h) >= 0.03 {
		return 0
	}
	return 0.005 + 0.12*scaleFrac(scaleMix(w.Cfg.Seed, 0x1056, uint64(e), 0))
}

// AccessMS is the last-mile one-way latency of an edge prefix.
func (w *ScaleWorld) AccessMS(p Prefix) float64 {
	return 0.5 + 5.5*scaleFrac(scaleMix(w.Cfg.Seed, 0xACC, uint64(p), 0))
}

// upChain fills buf with x's provider chain (x first, then providers up
// to a tier-1) and returns its length.
func (w *ScaleWorld) upChain(x int32, buf []int32) int {
	n := 0
	for {
		buf[n] = x
		n++
		p := w.upParent[x]
		if p < 0 || n == len(buf) {
			return n
		}
		x = p
	}
}

// RoutePath synthesizes the valley-free BGP route from src to dst (AS
// indices) into buf: both endpoints climb their provider chains, and the
// pair of chain members joining at the lowest combined height — via a
// shared AS or any direct edge — splices the route. The tier-1 clique
// guarantees a join. The result is up*[cross]down*, hence valley-free,
// and deterministic for a given world.
func (w *ScaleWorld) RoutePath(src, dst int32, buf []int32) []int32 {
	out := buf[:0]
	if src == dst {
		return append(out, src)
	}
	var cs, cd [maxChainLen]int32
	ns := w.upChain(src, cs[:])
	nd := w.upChain(dst, cd[:])
	bestCost, bi, bj := int(1)<<30, -1, -1
	bEdge := false
	for i := 0; i < ns; i++ {
		if i+1 >= bestCost {
			break
		}
		for j := 0; j < nd; j++ {
			if i+j >= bestCost {
				break
			}
			if cs[i] == cd[j] {
				bestCost, bi, bj, bEdge = i+j, i, j, false
			} else if i+j+1 < bestCost && w.EdgeBetween(cs[i], cd[j]) >= 0 {
				bestCost, bi, bj, bEdge = i+j+1, i, j, true
			}
		}
	}
	if bi < 0 {
		return out // disconnected (never happens in a generated world)
	}
	for i := 0; i <= bi; i++ {
		out = append(out, cs[i])
	}
	start := bj
	if !bEdge {
		start = bj - 1
	}
	for j := start; j >= 0; j-- {
		out = append(out, cd[j])
	}
	return out
}

// RouteASNs is RoutePath in ASN terms, for BGP-feed emission.
func (w *ScaleWorld) RouteASNs(src, dst int32, buf []ASN) []ASN {
	var pb [2 * maxChainLen]int32
	p := w.RoutePath(src, dst, pb[:])
	out := buf[:0]
	for _, i := range p {
		out = append(out, ASN(i+1))
	}
	return out
}

// Feeds picks the n highest-degree ASes as BGP route collectors.
func (w *ScaleWorld) Feeds(n int) []int32 {
	idx := make([]int32, len(w.X))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if w.Deg[idx[a]] != w.Deg[idx[b]] {
			return w.Deg[idx[a]] > w.Deg[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	return append([]int32(nil), idx[:n]...)
}

// Population picks the measurement population: nVPs vantage-point
// prefixes and nClients client prefixes, each in a distinct
// prefix-owning AS, spread evenly across the ownership range.
func (w *ScaleWorld) Population(nVPs, nClients int) (vps, clients []Prefix) {
	total := nVPs + nClients
	if total > len(w.owners) {
		total = len(w.owners)
		if nVPs > total {
			nVPs = total
		}
		nClients = total - nVPs
	}
	if total == 0 {
		return nil, nil
	}
	picks := make([]Prefix, 0, total)
	for k := 0; k < total; k++ {
		i := w.owners[k*len(w.owners)/total]
		picks = append(picks, ScaleEdgeBase+Prefix(w.prefStart[i]))
	}
	return picks[:nVPs], picks[nVPs:]
}

// EdgePrefixAt returns the j-th edge prefix (0 <= j < NumPrefixes).
func (w *ScaleWorld) EdgePrefixAt(j int) Prefix { return ScaleEdgeBase + Prefix(j) }

// ForEachPrefixOrigin streams the full BGP origin table (infrastructure
// and edge prefixes) without materializing it.
func (w *ScaleWorld) ForEachPrefixOrigin(emit func(p Prefix, as ASN)) {
	n := len(w.X)
	for i := 0; i < n; i++ {
		emit(ScaleInfraBase+Prefix(i), ASN(i+1))
	}
	for i := 0; i < n; i++ {
		for j := w.prefStart[i]; j < w.prefStart[i+1]; j++ {
			emit(ScaleEdgeBase+Prefix(j), ASN(i+1))
		}
	}
}

// Stats summarizes the world for logging.
func (w *ScaleWorld) Stats() string {
	peers := 0
	for _, p := range w.EdgePeer {
		if p {
			peers++
		}
	}
	maxDeg := int32(0)
	for _, d := range w.Deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	return fmt.Sprintf("ASes=%d edges=%d (peer=%d c2p=%d) maxDeg=%d edgePrefixes=%d prefixOwners=%d",
		w.NumASes(), w.NumEdges(), peers, w.NumEdges()-peers, maxDeg, w.NumPrefixes(), len(w.owners))
}

package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TestConfig(42))
	b := Generate(TestConfig(42))
	if a.Stats() != b.Stats() {
		t.Fatalf("same seed produced different worlds: %v vs %v", a.Stats(), b.Stats())
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, a.Links[i], b.Links[i])
		}
	}
	// Relationship-derived sets must match exactly: these passes mix RNG
	// draws with map access and regress silently if iteration order leaks.
	if len(a.Rels) != len(b.Rels) || len(a.LateExit) != len(b.LateExit) || len(a.NoSelfExport) != len(b.NoSelfExport) {
		t.Fatalf("relationship set sizes differ")
	}
	for k, r := range a.Rels {
		if b.Rels[k] != r {
			t.Fatalf("rel %d differs: %v vs %v", k, r, b.Rels[k])
		}
	}
	for k := range a.LateExit {
		if !b.LateExit[k] {
			t.Fatalf("late-exit pair %d missing in second world", k)
		}
	}
	for k := range a.NoSelfExport {
		if !b.NoSelfExport[k] {
			t.Fatalf("no-self-export pair %d missing in second world", k)
		}
	}
	c := Generate(TestConfig(43))
	if a.Stats() == c.Stats() {
		t.Fatalf("different seeds produced identical stats: %v", a.Stats())
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := TestConfig(1)
	top := Generate(cfg)
	want := cfg.NumTier1 + cfg.NumTransit + cfg.NumStub
	if got := len(top.ASes); got != want {
		t.Fatalf("got %d ASes, want %d", got, want)
	}
	for i := range top.ASes {
		as := &top.ASes[i]
		if len(as.PoPs) == 0 {
			t.Fatalf("AS %d has no PoPs", as.ASN)
		}
		if len(as.Prefixes) == 0 {
			t.Fatalf("AS %d has no prefixes", as.ASN)
		}
	}
	if len(top.EdgePrefixes) == 0 {
		t.Fatal("no edge prefixes")
	}
}

// Every non-tier-1 AS must reach the tier-1 clique by walking provider
// edges; otherwise the world has partitions no routing policy can cross.
func TestProviderChainsReachTier1(t *testing.T) {
	top := Generate(TestConfig(7))
	for i := range top.ASes {
		as := &top.ASes[i]
		if as.Tier == TierOne {
			continue
		}
		seen := map[ASN]bool{as.ASN: true}
		frontier := []ASN{as.ASN}
		found := false
		for len(frontier) > 0 && !found {
			var next []ASN
			for _, a := range frontier {
				for _, nb := range top.ASAdj[a-1] {
					r := top.RelOf(a, nb)
					if r != RelProvider && r != RelSibling {
						continue
					}
					if top.AS(nb).Tier == TierOne {
						found = true
						break
					}
					if !seen[nb] {
						seen[nb] = true
						next = append(next, nb)
					}
				}
			}
			frontier = next
		}
		if !found {
			t.Fatalf("AS %d (%v) cannot reach a tier-1 via providers", as.ASN, as.Tier)
		}
	}
}

func TestIntraASConnectivity(t *testing.T) {
	top := Generate(TestConfig(9))
	for i := range top.ASes {
		as := &top.ASes[i]
		if len(as.PoPs) < 2 {
			continue
		}
		seen := map[PoPID]bool{as.PoPs[0]: true}
		stack := []PoPID{as.PoPs[0]}
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, adj := range top.AdjPoP[p] {
				if top.Links[adj.Link].Kind != LinkIntra {
					continue
				}
				q := adj.To
				if top.PoPAS(q) == as.ASN && !seen[q] {
					seen[q] = true
					stack = append(stack, q)
				}
			}
		}
		if len(seen) != len(as.PoPs) {
			t.Fatalf("AS %d intra graph disconnected: reached %d of %d PoPs", as.ASN, len(seen), len(as.PoPs))
		}
	}
}

func TestEveryAdjacencyHasLinks(t *testing.T) {
	top := Generate(TestConfig(11))
	for k, r := range top.Rels {
		a, b := ASN(k>>32), ASN(k&0xffffffff)
		if links := top.InterLinks(a, b); len(links) == 0 {
			t.Fatalf("adjacency %d-%d (%v) has no physical links", a, b, r)
		}
	}
}

func TestRelSymmetry(t *testing.T) {
	top := Generate(TestConfig(13))
	for k := range top.Rels {
		a, b := ASN(k>>32), ASN(k&0xffffffff)
		ra, rb := top.RelOf(a, b), top.RelOf(b, a)
		if ra.Invert() != rb {
			t.Fatalf("asymmetric relationship %d-%d: %v vs %v", a, b, ra, rb)
		}
	}
}

func TestLinkPropertiesValid(t *testing.T) {
	top := Generate(TestConfig(17))
	for _, l := range top.Links {
		if l.LatencyMS <= 0 {
			t.Fatalf("link %d has non-positive latency %v", l.ID, l.LatencyMS)
		}
		if l.LossAB < 0 || l.LossAB > 1 || l.LossBA < 0 || l.LossBA > 1 {
			t.Fatalf("link %d has invalid loss %v/%v", l.ID, l.LossAB, l.LossBA)
		}
		if top.PoPAS(l.A) == top.PoPAS(l.B) && l.Kind != LinkIntra {
			t.Fatalf("link %d joins same AS but is %v", l.ID, l.Kind)
		}
		if top.PoPAS(l.A) != top.PoPAS(l.B) && l.Kind != LinkInter {
			t.Fatalf("link %d joins different ASes but is %v", l.ID, l.Kind)
		}
	}
}

func TestPrefixPlanConsistent(t *testing.T) {
	top := Generate(TestConfig(19))
	for pr, asn := range top.PrefixOrigin {
		home, ok := top.PrefixHome[pr]
		if !ok {
			t.Fatalf("prefix %v has origin but no home PoP", pr)
		}
		if top.PoPAS(home) != asn {
			t.Fatalf("prefix %v homed at PoP of AS %d, origin AS %d", pr, top.PoPAS(home), asn)
		}
	}
	for ip, rid := range top.IfaceRouter {
		asn, ok := top.PrefixOrigin[PrefixOf(ip)]
		if !ok {
			t.Fatalf("interface %v not covered by any allocated prefix", ip)
		}
		if got := top.PoPAS(top.Routers[rid].PoP); got != asn {
			t.Fatalf("interface %v owned by AS %d but its prefix originates from AS %d", ip, got, asn)
		}
	}
	for _, pr := range top.EdgePrefixes {
		if top.PrefixAccessMS[pr] <= 0 {
			t.Fatalf("edge prefix %v has no access latency", pr)
		}
	}
}

func TestNoSelfExportLeavesAnExporter(t *testing.T) {
	top := Generate(TestConfig(23))
	for i := range top.ASes {
		as := &top.ASes[i]
		var ups, blocked int
		for _, nb := range top.ASAdj[as.ASN-1] {
			if top.RelOf(as.ASN, nb) == RelProvider {
				ups++
				if top.NoSelfExport[DirASPairKey(nb, as.ASN)] {
					blocked++
				}
			}
		}
		if ups > 0 && blocked >= ups {
			t.Fatalf("AS %d has all %d providers marked no-self-export", as.ASN, ups)
		}
	}
}

func TestRelInvertProperty(t *testing.T) {
	f := func(r int8) bool {
		rel := Rel(r % 5)
		if rel < 0 {
			rel = -rel
		}
		return rel.Invert().Invert() == rel
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixIPRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		ip := IP(raw)
		p := PrefixOf(ip)
		return p.FirstIP()>>8 == ip>>8 && PrefixOf(p.HostIP()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
	}
	for _, c := range cases {
		if got := c.a.Dist(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIPStringFormats(t *testing.T) {
	ip := IP(10<<24 | 1<<16 | 2<<8 | 3)
	if got := ip.String(); got != "10.1.2.3" {
		t.Errorf("IP.String() = %q", got)
	}
	p := PrefixOf(ip)
	if got := p.String(); got != "10.1.2.0/24" {
		t.Errorf("Prefix.String() = %q", got)
	}
}

package netsim

import (
	"testing"
)

// checkScaleInvariants asserts the structural invariants every generated
// scale world must satisfy: no self-loops, no duplicate edges, a bounded
// provider chain from every AS into the tier-1 clique (which implies
// connectivity), acyclic provider edges, and a fully assigned prefix
// plan. Shared by the unit tests and FuzzScaleConfig.
func checkScaleInvariants(t *testing.T, w *ScaleWorld) {
	t.Helper()
	n := w.NumASes()
	t1 := int32(w.Cfg.Tier1)
	seen := make(map[uint64]bool, w.NumEdges())
	for e := 0; e < w.NumEdges(); e++ {
		a, b := w.EdgeA[e], w.EdgeB[e]
		if a == b {
			t.Fatalf("edge %d is a self-loop on AS %d", e, a)
		}
		k := scalePairKey(a, b)
		if seen[k] {
			t.Fatalf("duplicate edge %d between %d and %d", e, a, b)
		}
		seen[k] = true
		if !w.EdgePeer[e] && w.EdgeB[e] >= w.EdgeA[e] {
			t.Fatalf("provider edge %d: provider %d not earlier than customer %d (cycle risk)", e, w.EdgeB[e], w.EdgeA[e])
		}
	}
	var buf [maxChainLen]int32
	for i := int32(0); i < int32(n); i++ {
		ln := w.upChain(i, buf[:])
		top := buf[ln-1]
		if top >= t1 {
			t.Fatalf("AS %d: provider chain of length %d ends at %d, not a tier-1", i, ln, top)
		}
		for k := 0; k+1 < ln; k++ {
			if w.RelOf(buf[k], buf[k+1]) != RelProvider {
				t.Fatalf("AS %d: chain hop %d->%d is not a provider edge", i, buf[k], buf[k+1])
			}
		}
	}
	if got := w.NumPrefixes(); got != w.Cfg.Prefixes {
		t.Fatalf("prefix plan assigned %d prefixes, config wants %d", got, w.Cfg.Prefixes)
	}
	for i := 0; i < n; i++ {
		if w.prefStart[i+1] < w.prefStart[i] {
			t.Fatalf("prefix plan not monotone at AS %d", i)
		}
	}
}

// checkValleyFree asserts a path is up*[x]down*: after any non-up step,
// no further up steps.
func checkValleyFree(t *testing.T, w *ScaleWorld, path []int32) {
	t.Helper()
	onMap := make(map[int32]bool, len(path))
	for _, x := range path {
		if onMap[x] {
			t.Fatalf("path %v revisits AS %d", path, x)
		}
		onMap[x] = true
	}
	descending := false
	for k := 0; k+1 < len(path); k++ {
		rel := w.RelOf(path[k], path[k+1])
		if rel == RelNone {
			t.Fatalf("path %v: no edge between %d and %d", path, path[k], path[k+1])
		}
		up := rel == RelProvider
		if up && descending {
			t.Fatalf("path %v has a valley at hop %d", path, k)
		}
		if !up {
			descending = true
		}
	}
}

func TestGenerateScaleInvariants(t *testing.T) {
	w := GenerateScale(ScaleConfig{
		Seed: 7, ASes: 600, Tier1: 6, MinDegree: 2, PeerFrac: 0.2,
		Prefixes: 4000, MSPerUnit: 0.02, LinkBaseMS: 0.4,
	})
	checkScaleInvariants(t, w)

	// Routes between sampled pairs are valley-free, loop-free, and join
	// the requested endpoints.
	var buf [2 * maxChainLen]int32
	for s := 0; s < 40; s++ {
		src := int32((s * 97) % w.NumASes())
		dst := int32((s*131 + 17) % w.NumASes())
		p := w.RoutePath(src, dst, buf[:])
		if len(p) == 0 {
			t.Fatalf("no route %d -> %d", src, dst)
		}
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("route %d->%d got endpoints %v", src, dst, p)
		}
		checkValleyFree(t, w, p)
	}
}

func TestGenerateScaleDeterministic(t *testing.T) {
	cfg := DefaultScaleConfig(11)
	cfg.ASes, cfg.Prefixes = 500, 3000
	a, b := GenerateScale(cfg), GenerateScale(cfg)
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %s vs %s", a.Stats(), b.Stats())
	}
	for e := 0; e < a.NumEdges(); e++ {
		if a.EdgeA[e] != b.EdgeA[e] || a.EdgeB[e] != b.EdgeB[e] || a.EdgePeer[e] != b.EdgePeer[e] {
			t.Fatalf("edge %d diverges between identical seeds", e)
		}
	}
	var ba, bb [2 * maxChainLen]int32
	pa := a.RoutePath(3, 400, ba[:])
	pb := b.RoutePath(3, 400, bb[:])
	if len(pa) != len(pb) {
		t.Fatalf("routes diverge: %v vs %v", pa, pb)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("routes diverge: %v vs %v", pa, pb)
		}
	}
}

func TestScalePrefixPlan(t *testing.T) {
	cfg := DefaultScaleConfig(3)
	cfg.ASes, cfg.Prefixes = 400, 2500
	w := GenerateScale(cfg)
	// Every edge prefix resolves to its owner and back.
	for j := 0; j < w.NumPrefixes(); j += 37 {
		p := w.EdgePrefixAt(j)
		i := w.OriginIdx(p)
		if i < 0 {
			t.Fatalf("prefix %v has no origin", p)
		}
		if int32(j) < w.prefStart[i] || int32(j) >= w.prefStart[i+1] {
			t.Fatalf("prefix %v attributed to AS %d outside its range", p, i)
		}
		if w.OriginAS(p) != ASN(i+1) {
			t.Fatalf("OriginAS mismatch for %v", p)
		}
	}
	// Infra interfaces resolve to their AS; foreign space resolves to none.
	for i := int32(0); i < 20; i++ {
		ip := w.IfaceIP(i, (i+1)%20)
		if got := w.ASOfIface(ip); got != i {
			t.Fatalf("iface %v of AS %d resolved to %d", ip, i, got)
		}
		if w.OriginAS(PrefixOf(ip)) != ASN(i+1) {
			t.Fatalf("infra prefix of AS %d has wrong origin", i)
		}
	}
	if w.OriginIdx(Prefix(5)) != -1 || w.ASOfIface(IP(42)) != -1 {
		t.Fatal("unallocated space resolved to an AS")
	}
	// Origin streaming covers exactly infra + edge prefixes, no dups.
	seen := make(map[Prefix]ASN)
	w.ForEachPrefixOrigin(func(p Prefix, as ASN) {
		if _, dup := seen[p]; dup {
			t.Fatalf("prefix %v emitted twice", p)
		}
		seen[p] = as
	})
	if len(seen) != w.NumASes()+w.NumPrefixes() {
		t.Fatalf("origin table has %d entries, want %d", len(seen), w.NumASes()+w.NumPrefixes())
	}
}

func TestScalePopulation(t *testing.T) {
	cfg := DefaultScaleConfig(5)
	cfg.ASes, cfg.Prefixes = 400, 2500
	w := GenerateScale(cfg)
	vps, clients := w.Population(10, 6)
	if len(vps) != 10 || len(clients) != 6 {
		t.Fatalf("population sizes %d/%d", len(vps), len(clients))
	}
	inAS := make(map[int32]bool)
	for _, p := range append(append([]Prefix(nil), vps...), clients...) {
		i := w.OriginIdx(p)
		if i < 0 {
			t.Fatalf("population prefix %v unowned", p)
		}
		if inAS[i] {
			t.Fatalf("two population prefixes in AS %d", i)
		}
		inAS[i] = true
	}
}

func TestScaleGroundTruthStable(t *testing.T) {
	cfg := DefaultScaleConfig(9)
	cfg.ASes, cfg.Prefixes = 300, 1000
	w := GenerateScale(cfg)
	for e := int32(0); e < 50; e++ {
		if w.LinkLatencyMS(e) != w.LinkLatencyMS(e) || w.LinkLatencyMS(e) < w.Cfg.LinkBaseMS*0.9 {
			t.Fatalf("edge %d latency unstable or below floor", e)
		}
		if l := w.LinkLossRate(e); l < 0 || l > 0.2 {
			t.Fatalf("edge %d loss %v out of range", e, l)
		}
	}
	p := w.EdgePrefixAt(5)
	if w.AccessMS(p) != w.AccessMS(p) || w.AccessMS(p) < 0.5 {
		t.Fatal("access latency unstable or below floor")
	}
}

// FuzzScaleConfig pins the generator's structural invariants (connected
// graph reaching the tier-1 clique, valley-free relationships, no
// self-loops or duplicate edges, fully assigned prefix plan) across the
// config space.
func FuzzScaleConfig(f *testing.F) {
	f.Add(int64(1), 100, 3, 1, 0.1, 500)
	f.Add(int64(42), 800, 8, 2, 0.3, 5000)
	f.Add(int64(-9), 20, 2, 4, 1.0, 7)
	f.Fuzz(func(t *testing.T, seed int64, ases, tier1, minDeg int, peerFrac float64, prefixes int) {
		// Clamp into the supported envelope; reject only what Validate
		// rejects so the fuzzer explores the whole legal space cheaply.
		if ases > 3000 || prefixes > 30000 {
			t.Skip("capped for fuzz throughput")
		}
		cfg := ScaleConfig{
			Seed: seed, ASes: ases, Tier1: tier1, MinDegree: minDeg,
			PeerFrac: peerFrac, Prefixes: prefixes, MSPerUnit: 0.02, LinkBaseMS: 0.4,
		}
		if cfg.Validate() != nil {
			t.Skip()
		}
		w := GenerateScale(cfg)
		checkScaleInvariants(t, w)
		var buf [2 * maxChainLen]int32
		for s := 0; s < 8; s++ {
			src := int32((s*17 + int(uint64(seed)%7)) % w.NumASes())
			dst := int32((s*41 + 5) % w.NumASes())
			p := w.RoutePath(src, dst, buf[:])
			if len(p) == 0 || p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("bad route %d->%d: %v", src, dst, p)
			}
			checkValleyFree(t, w, p)
		}
	})
}

package netsim

// Config controls synthetic world generation. The zero value is not usable;
// start from DefaultConfig, TestConfig, or EvalConfig.
type Config struct {
	Seed int64

	// AS population by tier.
	NumTier1   int
	NumTransit int
	NumStub    int

	// Geography: cities are scattered over a MapW x MapH plane and grouped
	// into NumRegions clusters. Non-tier-1 ASes live mostly inside one
	// region.
	NumCities  int
	NumRegions int
	MapW, MapH float64

	// PoP counts per tier (inclusive ranges).
	Tier1PoPMin, Tier1PoPMax     int
	TransitPoPMin, TransitPoPMax int
	StubPoPMin, StubPoPMax       int

	// Routers per PoP and interfaces per router (inclusive ranges).
	RoutersPerPoPMin, RoutersPerPoPMax int
	IfacesPerRouterMin                 int
	IfacesPerRouterMax                 int

	// Connectivity.
	TransitProvidersMin, TransitProvidersMax int     // providers per transit AS
	StubProvidersMin, StubProvidersMax       int     // providers per stub AS
	TransitPeerProb                          float64 // prob. of peering with each same-region transit
	StubPeerProb                             float64 // prob. of a stub peering with one nearby stub
	InterLinksMin, InterLinksMax             int     // physical links per AS adjacency
	IntraExtraChordFrac                      float64 // extra intra-AS chords beyond the spanning tree, as a fraction of PoPs

	// Prefix plan.
	StubPrefixMin, StubPrefixMax int // edge prefixes per stub AS
	TransitEdgePrefixes          int // edge prefixes per transit AS

	// Latency model: one-way latency of a link spanning distance d is
	// d*MSPerUnit + LinkBaseMS; colocated (same-city) links use ColoMS.
	MSPerUnit  float64
	LinkBaseMS float64
	ColoMS     float64

	// Loss model: each directed link independently becomes lossy with
	// LossyLinkProb (edge/access links with EdgeLossyProb); a lossy link
	// draws its loss rate uniformly from (LossMin, LossMax].
	LossyLinkProb float64
	EdgeLossyProb float64
	LossMin       float64
	LossMax       float64

	// Routing-policy irregularities that the predictor must cope with.
	SiblingFrac      float64 // fraction of c2p edges converted to sibling
	LateExitFrac     float64 // fraction of adjacencies running late-exit
	NoSelfExportFrac float64 // fraction of (neighbor, AS) transit edges that never carry the AS's own prefixes (§4.3.4)
}

// DefaultConfig is a mid-sized world good for examples: a few hundred ASes,
// around a thousand PoPs. Generation takes well under a second.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:       seed,
		NumTier1:   6,
		NumTransit: 60,
		NumStub:    500,

		NumCities:  48,
		NumRegions: 8,
		MapW:       5000,
		MapH:       3000,

		Tier1PoPMin: 10, Tier1PoPMax: 18,
		TransitPoPMin: 3, TransitPoPMax: 7,
		StubPoPMin: 1, StubPoPMax: 2,

		RoutersPerPoPMin: 2, RoutersPerPoPMax: 4,
		IfacesPerRouterMin: 2, IfacesPerRouterMax: 5,

		TransitProvidersMin: 1, TransitProvidersMax: 3,
		StubProvidersMin: 1, StubProvidersMax: 3,
		TransitPeerProb: 0.25,
		StubPeerProb:    0.08,
		InterLinksMin:   1, InterLinksMax: 3,
		IntraExtraChordFrac: 0.35,

		StubPrefixMin: 1, StubPrefixMax: 4,
		TransitEdgePrefixes: 1,

		MSPerUnit:  0.02,
		LinkBaseMS: 0.3,
		ColoMS:     0.8,

		LossyLinkProb: 0.05,
		EdgeLossyProb: 0.14,
		LossMin:       0.005,
		LossMax:       0.22,

		SiblingFrac:      0.015,
		LateExitFrac:     0.02,
		NoSelfExportFrac: 0.05,
	}
}

// TestConfig is a small world for unit tests: tens of ASes, generation in
// milliseconds.
func TestConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.NumTier1 = 3
	c.NumTransit = 12
	c.NumStub = 60
	c.NumCities = 16
	c.NumRegions = 4
	c.Tier1PoPMin, c.Tier1PoPMax = 4, 7
	c.TransitPoPMin, c.TransitPoPMax = 2, 4
	return c
}

// EvalConfig is the evaluation-scale world used by the benchmark harness and
// cmd/inano-eval. Roughly 2K ASes / 5-6K PoPs / several thousand edge
// prefixes; a scaled-down analogue of the paper's 27,515 ASes.
func EvalConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.NumTier1 = 8
	c.NumTransit = 140
	c.NumStub = 1800
	c.NumCities = 64
	c.NumRegions = 10
	return c
}

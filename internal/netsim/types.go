// Package netsim builds synthetic Internet topologies: a tiered AS-level
// graph annotated with business relationships, a PoP-level physical map with
// geographic coordinates, routers and numbered interfaces inside each PoP,
// link latencies derived from geography, per-direction link loss rates, and
// an IPv4 prefix/address plan.
//
// The generated world is the ground truth that the measurement simulator
// (internal/trace) observes and that the iNano predictor (internal/core)
// tries to recover. Generation is fully deterministic for a given Config.
package netsim

import "fmt"

// ASN identifies an autonomous system. ASNs are dense: valid ASNs are
// 1..len(Topology.ASes), and Topology.AS(a) indexes by ASN-1.
type ASN uint32

// PoPID indexes Topology.PoPs. A PoP ("point of presence") is the set of
// routers an AS operates in one location; it is the routing-relevant unit of
// the paper's model.
type PoPID int32

// RouterID indexes Topology.Routers.
type RouterID int32

// LinkID indexes Topology.Links.
type LinkID int32

// IP is an IPv4 address as a big-endian 32-bit word.
type IP uint32

// Prefix is a /24 prefix, identified by the upper 24 bits of its addresses
// (that is, Prefix == IP>>8 for every IP it covers).
type Prefix uint32

// PrefixOf returns the /24 prefix containing ip.
func PrefixOf(ip IP) Prefix { return Prefix(ip >> 8) }

// FirstIP returns the lowest address in p.
func (p Prefix) FirstIP() IP { return IP(p) << 8 }

// HostIP returns the conventional probe-target host inside p.
func (p Prefix) HostIP() IP { return IP(p)<<8 + 1 }

// String formats the prefix in dotted-quad/24 notation.
func (p Prefix) String() string {
	ip := uint32(p) << 8
	return fmt.Sprintf("%d.%d.%d.0/24", byte(ip>>24), byte(ip>>16), byte(ip>>8))
}

// String formats the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Tier classifies an AS's position in the provider hierarchy.
type Tier int8

const (
	// TierStub is an edge AS that originates customer prefixes and
	// provides no transit.
	TierStub Tier = iota
	// TierTransit is a regional or national transit provider.
	TierTransit
	// TierOne is a default-free backbone AS; tier-1s peer in a clique.
	TierOne
)

func (t Tier) String() string {
	switch t {
	case TierStub:
		return "stub"
	case TierTransit:
		return "transit"
	case TierOne:
		return "tier1"
	default:
		return fmt.Sprintf("Tier(%d)", int8(t))
	}
}

// Rel is a business relationship between two ASes, expressed from the
// perspective of the first AS of the pair: Rel(a,b) answers "what is b to a?".
type Rel int8

const (
	// RelNone means the ASes are not adjacent.
	RelNone Rel = iota
	// RelCustomer: b is a's customer (b pays a).
	RelCustomer
	// RelPeer: a and b exchange traffic settlement-free.
	RelPeer
	// RelProvider: b is a's provider (a pays b).
	RelProvider
	// RelSibling: a and b are under common ownership and share routes
	// freely; sibling pairs are the natural candidates for late-exit
	// routing (§4.2.2 of the paper).
	RelSibling
)

func (r Rel) String() string {
	switch r {
	case RelNone:
		return "none"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	case RelSibling:
		return "sibling"
	default:
		return fmt.Sprintf("Rel(%d)", int8(r))
	}
}

// Invert flips the perspective: if Rel(a,b)==r then Rel(b,a)==r.Invert().
func (r Rel) Invert() Rel {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return r
	}
}

// Point is a location on the synthetic map. Distances are Euclidean and feed
// directly into link latencies (see Config.MSPerUnit).
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return sqrt(dx*dx + dy*dy)
}

// AS is one autonomous system.
type AS struct {
	ASN      ASN
	Tier     Tier
	Region   int // index of the home region (city cluster) for non-tier-1s
	PoPs     []PoPID
	Prefixes []Prefix // prefixes this AS originates (infrastructure + edge)
}

// PoP is a point of presence: the routers of one AS in one city.
type PoP struct {
	ID      PoPID
	AS      ASN
	City    int // index into Topology.Cities
	Loc     Point
	Routers []RouterID
}

// Router is one device inside a PoP. Each router owns several numbered
// interfaces; traceroutes reveal interface addresses, and alias resolution
// (internal/cluster) must re-group them.
type Router struct {
	ID     RouterID
	PoP    PoPID
	Ifaces []IP
}

// LinkKind distinguishes physical link classes.
type LinkKind int8

const (
	// LinkIntra connects two PoPs of the same AS.
	LinkIntra LinkKind = iota
	// LinkInter connects PoPs of adjacent ASes.
	LinkInter
)

// Link is an undirected physical link between two PoPs. Loss is modeled per
// direction.
type Link struct {
	ID        LinkID
	A, B      PoPID
	Kind      LinkKind
	LatencyMS float64 // one-way propagation + forwarding latency
	LossAB    float64 // loss probability in the A->B direction
	LossBA    float64 // loss probability in the B->A direction
}

// Adj is one directed adjacency in the per-PoP adjacency lists.
type Adj struct {
	Link LinkID
	To   PoPID
}

// ASPairKey packs an unordered AS pair for map keys; a need not be < b.
func ASPairKey(a, b ASN) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// DirASPairKey packs an ordered AS pair.
func DirASPairKey(a, b ASN) uint64 { return uint64(a)<<32 | uint64(b) }

// Topology is a complete generated world.
type Topology struct {
	Cfg     Config
	Cities  []Point
	ASes    []AS
	PoPs    []PoP
	Routers []Router
	Links   []Link
	// AdjPoP[p] lists the directed adjacencies of PoP p over non-access
	// links.
	AdjPoP [][]Adj
	// Rels maps ASPairKey(a,b) to Rel(min(a,b), max(a,b)).
	Rels map[uint64]Rel
	// ASAdj[asn-1] lists the neighbor ASes of each AS.
	ASAdj [][]ASN
	// LateExit holds ASPairKeys of pairs that run late-exit (cold potato)
	// routing between themselves.
	LateExit map[uint64]bool
	// NoSelfExport holds DirASPairKey(a,b) pairs where b provides transit
	// visible from a, but never announces b's own prefixes to a
	// (the traffic-engineering case of §4.3.4).
	NoSelfExport map[uint64]bool
	// EdgePrefixes are prefixes that host probe destinations (stub and
	// transit customer prefixes), i.e. the "Internet's edge".
	EdgePrefixes []Prefix
	// PrefixOrigin maps every allocated prefix to its origin AS.
	PrefixOrigin map[Prefix]ASN
	// PrefixHome maps every allocated prefix to the PoP that homes it.
	PrefixHome map[Prefix]PoPID
	// PrefixAccessMS is the last-mile one-way latency from the homing PoP
	// to hosts in an edge prefix; PrefixAccessLoss the last-mile loss rate
	// (applied in both directions).
	PrefixAccessMS   map[Prefix]float64
	PrefixAccessLoss map[Prefix]float64
	// IfaceRouter maps every interface address to its router.
	IfaceRouter map[IP]RouterID
	// interAt[DirASPairKey(a,b)] lists links joining a to b.
	interAt map[uint64][]LinkID
}

// AS returns the AS record for asn. It panics on an invalid ASN, which is
// always a programming error given dense allocation.
func (t *Topology) AS(asn ASN) *AS {
	return &t.ASes[asn-1]
}

// RelOf returns the relationship of b from a's perspective.
func (t *Topology) RelOf(a, b ASN) Rel {
	r, ok := t.Rels[ASPairKey(a, b)]
	if !ok {
		return RelNone
	}
	if a <= b {
		return r
	}
	return r.Invert()
}

// InterLinks returns the physical links joining ASes a and b.
func (t *Topology) InterLinks(a, b ASN) []LinkID {
	return t.interAt[ASPairKey(a, b)]
}

// PoPAS returns the AS owning PoP p.
func (t *Topology) PoPAS(p PoPID) ASN { return t.PoPs[p].AS }

// RouterPoP returns the PoP containing the router that owns ip, or -1 if ip
// is not an infrastructure interface.
func (t *Topology) RouterPoP(ip IP) PoPID {
	r, ok := t.IfaceRouter[ip]
	if !ok {
		return -1
	}
	return t.Routers[r].PoP
}

// LinkLoss returns the loss rate of link l in the direction from PoP `from`.
func (t *Topology) LinkLoss(l LinkID, from PoPID) float64 {
	lk := &t.Links[l]
	if lk.A == from {
		return lk.LossAB
	}
	return lk.LossBA
}

// OtherEnd returns the far end of link l as seen from PoP `from`.
func (t *Topology) OtherEnd(l LinkID, from PoPID) PoPID {
	lk := &t.Links[l]
	if lk.A == from {
		return lk.B
	}
	return lk.A
}

// NumASes returns the number of ASes in the world.
func (t *Topology) NumASes() int { return len(t.ASes) }

// Stats summarizes a generated world for logging.
type Stats struct {
	ASes, PoPs, Routers, Ifaces int
	IntraLinks, InterLinks      int
	EdgePrefixes                int
	C2P, P2P, Siblings          int
}

// Stats computes summary counts.
func (t *Topology) Stats() Stats {
	var s Stats
	s.ASes = len(t.ASes)
	s.PoPs = len(t.PoPs)
	s.Routers = len(t.Routers)
	s.Ifaces = len(t.IfaceRouter)
	for _, l := range t.Links {
		switch l.Kind {
		case LinkIntra:
			s.IntraLinks++
		case LinkInter:
			s.InterLinks++
		}
	}
	s.EdgePrefixes = len(t.EdgePrefixes)
	for _, r := range t.Rels {
		switch r {
		case RelCustomer, RelProvider:
			s.C2P++
		case RelPeer:
			s.P2P++
		case RelSibling:
			s.Siblings++
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("ASes=%d PoPs=%d routers=%d ifaces=%d intra=%d inter=%d edgePrefixes=%d c2p=%d p2p=%d sib=%d",
		s.ASes, s.PoPs, s.Routers, s.Ifaces, s.IntraLinks, s.InterLinks, s.EdgePrefixes, s.C2P, s.P2P, s.Siblings)
}

package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Generate builds a complete synthetic world from cfg. It panics on
// malformed configs (zero AS counts and the like), since configs are
// programmer-supplied constants, and returns a fully connected topology:
// every non-tier-1 AS has at least one provider chain to the tier-1 clique,
// every AS's PoPs form a connected intra-AS graph, and every AS adjacency is
// realized by at least one physical link.
func Generate(cfg Config) *Topology {
	if cfg.NumTier1 < 2 || cfg.NumCities < 2 {
		panic(fmt.Sprintf("netsim: invalid config: %d tier1 ASes, %d cities", cfg.NumTier1, cfg.NumCities))
	}
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		t: &Topology{
			Cfg:              cfg,
			Rels:             make(map[uint64]Rel),
			LateExit:         make(map[uint64]bool),
			NoSelfExport:     make(map[uint64]bool),
			PrefixOrigin:     make(map[Prefix]ASN),
			PrefixHome:       make(map[Prefix]PoPID),
			PrefixAccessMS:   make(map[Prefix]float64),
			PrefixAccessLoss: make(map[Prefix]float64),
			IfaceRouter:      make(map[IP]RouterID),
			interAt:          make(map[uint64][]LinkID),
		},
		nextPrefix: Prefix(10 << 16), // start the plan at 10.0.0.0/24
	}
	g.placeCities()
	g.createASes()
	g.placePoPs()
	g.buildASGraph()
	g.markSiblings()
	g.buildIntraLinks()
	g.buildInterLinks()
	g.buildAdjacency()
	g.allocateRouters()
	g.allocatePrefixes()
	g.markLateExit()
	g.markNoSelfExport()
	g.t.ASAdj = g.asAdj
	return g.t
}

type generator struct {
	cfg        Config
	rng        *rand.Rand
	t          *Topology
	regions    []Point // region centers
	cityRegion []int
	asAdj      [][]ASN
	nextPrefix Prefix
}

func (g *generator) randRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// placeCities scatters region centers uniformly, then cities around them.
func (g *generator) placeCities() {
	cfg := g.cfg
	g.regions = make([]Point, cfg.NumRegions)
	for i := range g.regions {
		g.regions[i] = Point{
			X: cfg.MapW * (0.1 + 0.8*g.rng.Float64()),
			Y: cfg.MapH * (0.1 + 0.8*g.rng.Float64()),
		}
	}
	g.t.Cities = make([]Point, cfg.NumCities)
	g.cityRegion = make([]int, cfg.NumCities)
	spread := math.Min(cfg.MapW, cfg.MapH) / float64(cfg.NumRegions)
	for i := range g.t.Cities {
		r := i % cfg.NumRegions
		c := g.regions[r]
		g.t.Cities[i] = Point{
			X: clamp(c.X+g.rng.NormFloat64()*spread, 0, cfg.MapW),
			Y: clamp(c.Y+g.rng.NormFloat64()*spread, 0, cfg.MapH),
		}
		g.cityRegion[i] = r
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// createASes allocates AS records: tier-1s first, then transits, then stubs.
// ASNs are dense starting at 1.
func (g *generator) createASes() {
	cfg := g.cfg
	total := cfg.NumTier1 + cfg.NumTransit + cfg.NumStub
	g.t.ASes = make([]AS, 0, total)
	add := func(tier Tier, region int) {
		asn := ASN(len(g.t.ASes) + 1)
		g.t.ASes = append(g.t.ASes, AS{ASN: asn, Tier: tier, Region: region})
	}
	for i := 0; i < cfg.NumTier1; i++ {
		add(TierOne, -1)
	}
	for i := 0; i < cfg.NumTransit; i++ {
		add(TierTransit, g.rng.Intn(cfg.NumRegions))
	}
	for i := 0; i < cfg.NumStub; i++ {
		add(TierStub, g.rng.Intn(cfg.NumRegions))
	}
	g.asAdj = make([][]ASN, total)
}

// citiesInRegion returns city indices belonging to region r.
func (g *generator) citiesInRegion(r int) []int {
	var out []int
	for i, cr := range g.cityRegion {
		if cr == r {
			out = append(out, i)
		}
	}
	return out
}

// placePoPs gives each AS its PoPs. Tier-1s span the whole map; transits
// cover their home region with occasional out-of-region presence; stubs sit
// in one or two home-region cities.
func (g *generator) placePoPs() {
	cfg := g.cfg
	for i := range g.t.ASes {
		as := &g.t.ASes[i]
		var n int
		var cityPool []int
		switch as.Tier {
		case TierOne:
			n = g.randRange(cfg.Tier1PoPMin, cfg.Tier1PoPMax)
			cityPool = allInts(cfg.NumCities)
		case TierTransit:
			n = g.randRange(cfg.TransitPoPMin, cfg.TransitPoPMax)
			cityPool = g.citiesInRegion(as.Region)
			// ~20% of transit PoPs land out of region (national reach).
			for c := 0; c < cfg.NumCities; c++ {
				if g.cityRegion[c] != as.Region && g.rng.Float64() < 0.05 {
					cityPool = append(cityPool, c)
				}
			}
		default:
			n = g.randRange(cfg.StubPoPMin, cfg.StubPoPMax)
			cityPool = g.citiesInRegion(as.Region)
		}
		if len(cityPool) == 0 {
			cityPool = []int{g.rng.Intn(cfg.NumCities)}
		}
		if n > len(cityPool) {
			n = len(cityPool)
		}
		perm := g.rng.Perm(len(cityPool))
		for k := 0; k < n; k++ {
			city := cityPool[perm[k]]
			id := PoPID(len(g.t.PoPs))
			// Jitter the PoP slightly off the city center so distinct
			// PoPs in one city have tiny nonzero distances.
			loc := g.t.Cities[city]
			loc.X += g.rng.NormFloat64() * 2
			loc.Y += g.rng.NormFloat64() * 2
			g.t.PoPs = append(g.t.PoPs, PoP{ID: id, AS: as.ASN, City: city, Loc: loc})
			as.PoPs = append(as.PoPs, id)
		}
	}
}

func allInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// setRel records a relationship; r is from a's perspective about b.
func (g *generator) setRel(a, b ASN, r Rel) {
	if a == b {
		return
	}
	k := ASPairKey(a, b)
	if _, dup := g.t.Rels[k]; dup {
		return
	}
	if a > b {
		r = r.Invert()
	}
	g.t.Rels[k] = r
	g.asAdj[a-1] = append(g.asAdj[a-1], b)
	g.asAdj[b-1] = append(g.asAdj[b-1], a)
}

// buildASGraph wires up the AS-level graph: tier-1 clique, transit providers
// and peering, stub multihoming.
func (g *generator) buildASGraph() {
	cfg := g.cfg
	t := g.t
	tier1s := make([]ASN, 0, cfg.NumTier1)
	transits := make([]ASN, 0, cfg.NumTransit)
	for i := range t.ASes {
		switch t.ASes[i].Tier {
		case TierOne:
			tier1s = append(tier1s, t.ASes[i].ASN)
		case TierTransit:
			transits = append(transits, t.ASes[i].ASN)
		}
	}
	// Tier-1 clique: settlement-free peering everywhere.
	for i, a := range tier1s {
		for _, b := range tier1s[i+1:] {
			g.setRel(a, b, RelPeer)
		}
	}
	// Transit providers: preferential attachment by PoP count, weighted
	// toward tier-1s for the first provider.
	for _, a := range transits {
		n := g.randRange(cfg.TransitProvidersMin, cfg.TransitProvidersMax)
		for k := 0; k < n; k++ {
			var prov ASN
			if k == 0 || g.rng.Float64() < 0.6 {
				prov = tier1s[g.rng.Intn(len(tier1s))]
			} else {
				prov = g.weightedTransit(transits, a)
			}
			if prov != 0 && prov != a {
				g.setRel(a, prov, RelProvider)
			}
		}
		// Regional transit peering.
		for _, b := range transits {
			if b <= a || t.AS(b).Region != t.AS(a).Region {
				continue
			}
			if g.rng.Float64() < cfg.TransitPeerProb {
				g.setRel(a, b, RelPeer)
			}
		}
	}
	// Stubs: multihome to same-region transits (weighted), rarely direct
	// to tier-1, and occasionally peer with a same-region stub.
	regionTransits := make([][]ASN, cfg.NumRegions)
	for _, a := range transits {
		r := t.AS(a).Region
		regionTransits[r] = append(regionTransits[r], a)
	}
	var prevStub ASN
	for i := range t.ASes {
		as := &t.ASes[i]
		if as.Tier != TierStub {
			continue
		}
		n := g.randRange(cfg.StubProvidersMin, cfg.StubProvidersMax)
		local := regionTransits[as.Region]
		for k := 0; k < n; k++ {
			var prov ASN
			switch {
			case len(local) > 0 && g.rng.Float64() < 0.85:
				prov = local[g.rng.Intn(len(local))]
			case g.rng.Float64() < 0.5 && len(transits) > 0:
				prov = transits[g.rng.Intn(len(transits))]
			default:
				prov = tier1s[g.rng.Intn(len(tier1s))]
			}
			g.setRel(as.ASN, prov, RelProvider)
		}
		if prevStub != 0 && t.AS(prevStub).Region == as.Region && g.rng.Float64() < cfg.StubPeerProb {
			g.setRel(as.ASN, prevStub, RelPeer)
		}
		prevStub = as.ASN
	}
}

// weightedTransit picks a transit AS other than self, weighted by PoP count
// (bigger networks attract more customers).
func (g *generator) weightedTransit(transits []ASN, self ASN) ASN {
	total := 0
	for _, a := range transits {
		if a != self {
			total += len(g.t.AS(a).PoPs)
		}
	}
	if total == 0 {
		return 0
	}
	pick := g.rng.Intn(total)
	for _, a := range transits {
		if a == self {
			continue
		}
		pick -= len(g.t.AS(a).PoPs)
		if pick < 0 {
			return a
		}
	}
	return 0
}

// sortedRelKeys returns the relationship keys in a stable order; every
// generator pass that mixes map iteration with RNG draws must use it, or
// Go's randomized map order would leak into the world.
func (g *generator) sortedRelKeys() []uint64 {
	keys := make([]uint64, 0, len(g.t.Rels))
	for k := range g.t.Rels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// markSiblings converts a fraction of customer-provider edges between
// transit ASes into sibling relationships (jointly run networks).
func (g *generator) markSiblings() {
	for _, k := range g.sortedRelKeys() {
		r := g.t.Rels[k]
		if r != RelCustomer && r != RelProvider {
			continue
		}
		a, b := ASN(k>>32), ASN(k&0xffffffff)
		if g.t.AS(a).Tier == TierStub || g.t.AS(b).Tier == TierStub {
			continue
		}
		if g.rng.Float64() < g.cfg.SiblingFrac {
			g.t.Rels[k] = RelSibling
		}
	}
}

func (g *generator) addLink(a, b PoPID, kind LinkKind) LinkID {
	cfg := g.cfg
	pa, pb := &g.t.PoPs[a], &g.t.PoPs[b]
	var lat float64
	if pa.City == pb.City {
		lat = cfg.ColoMS * (0.6 + 0.8*g.rng.Float64())
	} else {
		lat = pa.Loc.Dist(pb.Loc)*cfg.MSPerUnit + cfg.LinkBaseMS
	}
	id := LinkID(len(g.t.Links))
	g.t.Links = append(g.t.Links, Link{
		ID: id, A: a, B: b, Kind: kind,
		LatencyMS: lat,
		LossAB:    g.drawLoss(cfg.LossyLinkProb),
		LossBA:    g.drawLoss(cfg.LossyLinkProb),
	})
	return id
}

func (g *generator) drawLoss(lossyProb float64) float64 {
	if g.rng.Float64() >= lossyProb {
		return 0
	}
	return g.cfg.LossMin + g.rng.Float64()*(g.cfg.LossMax-g.cfg.LossMin)
}

// buildIntraLinks connects each AS's PoPs with a minimum spanning tree by
// distance plus random chords.
func (g *generator) buildIntraLinks() {
	for i := range g.t.ASes {
		pops := g.t.ASes[i].PoPs
		if len(pops) < 2 {
			continue
		}
		// Prim's MST over the PoPs.
		inTree := make([]bool, len(pops))
		dist := make([]float64, len(pops))
		from := make([]int, len(pops))
		for j := range dist {
			dist[j] = math.Inf(1)
		}
		inTree[0] = true
		for j := 1; j < len(pops); j++ {
			dist[j] = g.t.PoPs[pops[0]].Loc.Dist(g.t.PoPs[pops[j]].Loc)
			from[j] = 0
		}
		for n := 1; n < len(pops); n++ {
			best, bd := -1, math.Inf(1)
			for j := range pops {
				if !inTree[j] && dist[j] < bd {
					best, bd = j, dist[j]
				}
			}
			inTree[best] = true
			g.addLink(pops[from[best]], pops[best], LinkIntra)
			for j := range pops {
				if !inTree[j] {
					d := g.t.PoPs[pops[best]].Loc.Dist(g.t.PoPs[pops[j]].Loc)
					if d < dist[j] {
						dist[j], from[j] = d, best
					}
				}
			}
		}
		// Extra chords for path diversity.
		extra := int(float64(len(pops)) * g.cfg.IntraExtraChordFrac)
		for e := 0; e < extra; e++ {
			a := pops[g.rng.Intn(len(pops))]
			b := pops[g.rng.Intn(len(pops))]
			if a != b {
				g.addLink(a, b, LinkIntra)
			}
		}
	}
}

// buildInterLinks realizes each AS adjacency with one or more physical links
// between geographically close PoP pairs.
func (g *generator) buildInterLinks() {
	type pairDist struct {
		a, b PoPID
		d    float64
	}
	keys := make([]uint64, 0, len(g.t.Rels))
	for k := range g.t.Rels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		a, b := ASN(k>>32), ASN(k&0xffffffff)
		pa, pb := g.t.AS(a).PoPs, g.t.AS(b).PoPs
		pairs := make([]pairDist, 0, len(pa)*len(pb))
		for _, x := range pa {
			for _, y := range pb {
				pairs = append(pairs, pairDist{x, y, g.t.PoPs[x].Loc.Dist(g.t.PoPs[y].Loc)})
			}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })
		n := g.randRange(g.cfg.InterLinksMin, g.cfg.InterLinksMax)
		if n > len(pairs) {
			n = len(pairs)
		}
		for i := 0; i < n; i++ {
			id := g.addLink(pairs[i].a, pairs[i].b, LinkInter)
			g.t.interAt[k] = append(g.t.interAt[k], id)
		}
	}
}

// buildAdjacency fills the directed per-PoP adjacency lists.
func (g *generator) buildAdjacency() {
	g.t.AdjPoP = make([][]Adj, len(g.t.PoPs))
	for _, l := range g.t.Links {
		g.t.AdjPoP[l.A] = append(g.t.AdjPoP[l.A], Adj{Link: l.ID, To: l.B})
		g.t.AdjPoP[l.B] = append(g.t.AdjPoP[l.B], Adj{Link: l.ID, To: l.A})
	}
}

// allocateRouters creates routers and interface addresses inside each PoP.
// Interface addresses are drawn from per-AS infrastructure prefixes so that
// IP-to-AS mapping is meaningful.
func (g *generator) allocateRouters() {
	cfg := g.cfg
	for i := range g.t.ASes {
		as := &g.t.ASes[i]
		// Count interfaces first so we can reserve enough /24s.
		type plan struct {
			pop     PoPID
			routers []int // interface count per router
		}
		plans := make([]plan, 0, len(as.PoPs))
		total := 0
		for _, p := range as.PoPs {
			nr := g.randRange(cfg.RoutersPerPoPMin, cfg.RoutersPerPoPMax)
			pl := plan{pop: p}
			for r := 0; r < nr; r++ {
				ni := g.randRange(cfg.IfacesPerRouterMin, cfg.IfacesPerRouterMax)
				pl.routers = append(pl.routers, ni)
				total += ni
			}
			plans = append(plans, pl)
		}
		nPrefixes := (total + 253) / 254
		base := g.nextPrefix
		for p := Prefix(0); p < Prefix(nPrefixes); p++ {
			pr := base + p
			g.t.PrefixOrigin[pr] = as.ASN
			g.t.PrefixHome[pr] = as.PoPs[0]
			as.Prefixes = append(as.Prefixes, pr)
		}
		g.nextPrefix += Prefix(nPrefixes)
		next := base.FirstIP() + 1
		for _, pl := range plans {
			for _, ni := range pl.routers {
				rid := RouterID(len(g.t.Routers))
				r := Router{ID: rid, PoP: pl.pop}
				for k := 0; k < ni; k++ {
					if next&0xff >= 255 { // skip broadcast/network addresses
						next = (next | 0xff) + 1
					}
					r.Ifaces = append(r.Ifaces, next)
					g.t.IfaceRouter[next] = rid
					next++
				}
				g.t.Routers = append(g.t.Routers, r)
				g.t.PoPs[pl.pop].Routers = append(g.t.PoPs[pl.pop].Routers, rid)
			}
		}
	}
}

// allocatePrefixes assigns edge (customer) prefixes to stub and transit
// ASes. These are the probe destinations of the world.
func (g *generator) allocatePrefixes() {
	cfg := g.cfg
	for i := range g.t.ASes {
		as := &g.t.ASes[i]
		var n int
		switch as.Tier {
		case TierStub:
			n = g.randRange(cfg.StubPrefixMin, cfg.StubPrefixMax)
		case TierTransit:
			n = cfg.TransitEdgePrefixes
		default:
			continue
		}
		for k := 0; k < n; k++ {
			pr := g.nextPrefix
			g.nextPrefix++
			home := as.PoPs[g.rng.Intn(len(as.PoPs))]
			g.t.PrefixOrigin[pr] = as.ASN
			g.t.PrefixHome[pr] = home
			g.t.PrefixAccessMS[pr] = 0.5 + g.rng.Float64()*6 // DSL/cable tail
			g.t.PrefixAccessLoss[pr] = g.drawLoss(cfg.EdgeLossyProb)
			as.Prefixes = append(as.Prefixes, pr)
			g.t.EdgePrefixes = append(g.t.EdgePrefixes, pr)
		}
	}
}

// markLateExit flags sibling adjacencies (always) and a random sample of
// other adjacencies as late-exit pairs.
func (g *generator) markLateExit() {
	for _, k := range g.sortedRelKeys() {
		if g.t.Rels[k] == RelSibling || g.rng.Float64() < g.cfg.LateExitFrac {
			g.t.LateExit[k] = true
		}
	}
}

// markNoSelfExport picks multihomed ASes that withhold their own prefixes
// from some upstream neighbors (the §4.3.4 traffic-engineering case). At
// least one provider always carries the AS's own prefixes.
func (g *generator) markNoSelfExport() {
	for i := range g.t.ASes {
		as := &g.t.ASes[i]
		var ups []ASN
		for _, nb := range g.asAdj[as.ASN-1] {
			if g.t.RelOf(as.ASN, nb) == RelProvider {
				ups = append(ups, nb)
			}
		}
		if len(ups) < 2 {
			continue
		}
		for _, nb := range ups[1:] { // keep ups[0] always exporting
			if g.rng.Float64() < g.cfg.NoSelfExportFrac {
				g.t.NoSelfExport[DirASPairKey(nb, as.ASN)] = true
			}
		}
	}
}

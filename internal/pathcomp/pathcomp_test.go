package pathcomp

import (
	"testing"

	"inano/internal/atlas"
	"inano/internal/bgpsim"
	"inano/internal/cluster"
	"inano/internal/netsim"
	"inano/internal/trace"
)

type fixture struct {
	top     *netsim.Topology
	la      *atlas.Atlas
	pa      *Atlas
	vps     []netsim.Prefix
	targets []netsim.Prefix
}

func build(t testing.TB, seed int64) *fixture {
	t.Helper()
	top := netsim.Generate(netsim.TestConfig(seed))
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	day := sim.Day(0)
	m := trace.NewMeter(day, trace.DefaultOptions())
	vps := trace.SelectVantagePoints(top, 12)
	targets := top.EdgePrefixes
	if len(targets) > 80 {
		targets = targets[:80]
	}
	c := trace.RunCampaign(m, vps, targets)
	la := atlas.Build(atlas.BuildInput{
		Top: top, Day: day, Meter: m,
		VPTraces:   c.Traceroutes,
		BGPFeeds:   atlas.DefaultFeeds(top, 5),
		ClusterCfg: cluster.DefaultConfig(),
	})
	// Rebuild the clustering exactly as the builder saw it so the path
	// atlas shares cluster IDs with the link atlas.
	var ips []netsim.IP
	for _, tr := range c.Traceroutes {
		for _, h := range tr.Hops {
			if h.IP != 0 {
				ips = append(ips, h.IP)
			}
		}
	}
	cl := cluster.Cluster(top, ips, cluster.DefaultConfig())
	pa := BuildFromTraces(c.Traceroutes, cl.ClusterOf, la)
	return &fixture{top: top, la: la, pa: pa, vps: vps, targets: targets}
}

func TestBuildFromTracesIndexes(t *testing.T) {
	f := build(t, 91)
	if len(f.pa.Paths) == 0 {
		t.Fatal("no stored paths")
	}
	if len(f.pa.Sources()) == 0 {
		t.Fatal("no sources")
	}
	for i := range f.pa.Paths {
		sp := &f.pa.Paths[i]
		if len(sp.Clusters) != len(sp.LatTo) || len(sp.Clusters) != len(sp.AS) {
			t.Fatalf("path %d shape mismatch", i)
		}
		for j := 1; j < len(sp.LatTo); j++ {
			if sp.LossTo[j] < sp.LossTo[j-1]-1e-9 {
				t.Fatalf("path %d loss not monotone", i)
			}
		}
	}
}

func TestDirectMeasurementPreferred(t *testing.T) {
	f := build(t, 92)
	// Pick a stored path and predict its own (src,dst): the prediction
	// must reproduce the measured path exactly.
	sp := &f.pa.Paths[0]
	p := f.pa.Predict(sp.Src, sp.Dst, Options{})
	if !p.Found {
		t.Fatal("direct path not found")
	}
	if len(p.Clusters) != len(sp.Clusters) {
		t.Fatalf("direct prediction %v != measured %v", p.Clusters, sp.Clusters)
	}
	for i := range p.Clusters {
		if p.Clusters[i] != sp.Clusters[i] {
			t.Fatalf("cluster %d differs", i)
		}
	}
}

func TestComposedPredictionSplices(t *testing.T) {
	f := build(t, 93)
	// Cross-predict: source VP to a destination it measured, but through
	// the composition path (drop direct paths by predicting from a VP to
	// a target not in its own traces: emulate by src=one VP's prefix and
	// dst chosen so no stored (src,dst) exists).
	found := 0
	for _, src := range f.vps {
		for _, dst := range f.targets {
			if src == dst {
				continue
			}
			direct := false
			for _, pi := range f.pa.bySrc[src] {
				if f.pa.Paths[pi].Dst == dst {
					direct = true
					break
				}
			}
			if direct {
				continue
			}
			p := f.pa.Predict(src, dst, Options{})
			if p.Found {
				found++
				// The composed path must start where one of the
				// source's measured paths starts.
				okStart := false
				for _, pi := range f.pa.bySrc[src] {
					if f.pa.Paths[pi].Clusters[0] == p.Clusters[0] {
						okStart = true
						break
					}
				}
				if !okStart {
					t.Fatalf("composed path starts at cluster %d, not a measured first hop of %v", p.Clusters[0], src)
				}
				if p.LatencyMS <= 0 {
					t.Fatalf("composed path has latency %v", p.LatencyMS)
				}
				if p.LossRate < 0 || p.LossRate > 1 {
					t.Fatalf("composed loss %v", p.LossRate)
				}
			}
		}
	}
	if found == 0 {
		t.Skip("no non-direct pairs in this small world")
	}
}

func TestImprovedNeverWorseOnTuples(t *testing.T) {
	f := build(t, 94)
	// Improved predictions must satisfy the splice tuple check by
	// construction; verify on the resulting AS paths.
	for i, src := range f.vps {
		dst := f.targets[(i*7+3)%len(f.targets)]
		if src == dst {
			continue
		}
		p := f.pa.Predict(src, dst, Options{Improved: true})
		if !p.Found {
			continue
		}
		if len(p.ASPath) == 0 {
			t.Fatal("prediction without AS path")
		}
	}
}

func TestQueryBothDirections(t *testing.T) {
	f := build(t, 95)
	n := 0
	for i, src := range f.vps {
		dst := f.vps[(i+1)%len(f.vps)]
		if src == dst {
			continue
		}
		rtt, loss, ok := f.pa.Query(src, dst, Options{})
		if !ok {
			continue
		}
		n++
		if rtt <= 0 || loss < 0 || loss > 1 {
			t.Fatalf("bad query result rtt=%v loss=%v", rtt, loss)
		}
	}
	if n == 0 {
		t.Skip("no VP-to-VP compositions available")
	}
}

func TestSizeBytesGrowsWithPaths(t *testing.T) {
	f := build(t, 96)
	if f.pa.SizeBytes() <= 0 {
		t.Fatal("zero path atlas size")
	}
	// The paper's core claim: the path atlas dwarfs the link atlas.
	if f.pa.SizeBytes() < f.la.EncodedSize() {
		t.Logf("note: path atlas (%d B) smaller than link atlas (%d B) at toy scale", f.pa.SizeBytes(), f.la.EncodedSize())
	}
}

func TestPredictUnknownPrefix(t *testing.T) {
	f := build(t, 97)
	if f.pa.Predict(netsim.Prefix(0xFFFFFF), f.targets[0], Options{}).Found {
		t.Fatal("prediction from unknown source")
	}
}

// Package pathcomp implements iPlane's path-composition prediction — the
// baseline iNano is measured against (§3, §6.3). It keeps an atlas of
// *measured paths* (size proportional to vantage points × destinations ×
// path length, the scalability problem iNano solves) and predicts a route
// by splicing a path segment out of the source with a measured path into
// the destination at an intersecting cluster.
//
// The Improved variant applies iNano's techniques at the splice point
// (§6.3.1): the AS sequence around the intersection must pass the 3-tuple
// check, and AS preference tuples break ties among candidate intersections.
package pathcomp

import (
	"sort"

	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// StoredPath is one measured cluster-level path with cumulative one-way
// latency and loss estimates per hop (derived from traceroute RTTs, so
// noisier than iNano's link measurements — the paper's explanation for
// path composition's worse latency tail).
type StoredPath struct {
	Src, Dst netsim.Prefix
	Clusters []cluster.ClusterID
	// LatTo[i] estimates the one-way latency from the source to hop i.
	LatTo []float64
	// LossTo[i] estimates the one-way loss from the source to hop i.
	LossTo []float64
	// AS[i] is the AS of Clusters[i].
	AS []netsim.ASN
}

// Atlas is the path-based atlas.
type Atlas struct {
	Paths []StoredPath
	// bySrc indexes paths by source prefix; byDst by destination prefix;
	// through lists path indices passing through each cluster.
	bySrc   map[netsim.Prefix][]int32
	byDst   map[netsim.Prefix][]int32
	through map[cluster.ClusterID][]int32
	// link holds the link-level atlas for the Improved variant's tuple
	// and preference checks (nil for plain composition).
	link *atlas.Atlas
}

// Options selects the composition variant.
type Options struct {
	// Improved applies iNano's 3-tuple and preference checks when
	// splicing (the "improved path-based" bars of Fig. 5).
	Improved bool
	// DegreeThreshold gates the tuple check (default 5).
	DegreeThreshold int
}

// BuildFromTraces constructs the path atlas from measured traceroutes,
// using the clustering embedded in the link atlas's prefix/cluster data.
// clusterOf maps interfaces to clusters exactly as the link-atlas build
// did; la supplies AS mappings and (for Improved mode) tuple/pref sets.
func BuildFromTraces(traces []trace.Traceroute, clusterOf map[netsim.IP]cluster.ClusterID, la *atlas.Atlas) *Atlas {
	a := &Atlas{
		bySrc:   make(map[netsim.Prefix][]int32),
		byDst:   make(map[netsim.Prefix][]int32),
		through: make(map[cluster.ClusterID][]int32),
		link:    la,
	}
	for i := range traces {
		tr := &traces[i]
		if !tr.Reached {
			continue
		}
		sp := StoredPath{Src: tr.Src, Dst: tr.Dst}
		var prev cluster.ClusterID = -1
		for _, h := range tr.Hops {
			if h.IP == 0 {
				continue
			}
			c, ok := clusterOf[h.IP]
			if !ok || c == prev {
				continue
			}
			sp.Clusters = append(sp.Clusters, c)
			// One-way latency estimate: half the hop RTT, the paper's
			// "just subtracting RTTs measured in traceroutes".
			sp.LatTo = append(sp.LatTo, h.RTTMS/2)
			sp.AS = append(sp.AS, la.ClusterAS[c])
			prev = c
		}
		if len(sp.Clusters) < 1 {
			continue
		}
		// Loss estimates compose the link atlas's measured losses.
		sp.LossTo = make([]float64, len(sp.Clusters))
		deliver := 1.0
		for j := 1; j < len(sp.Clusters); j++ {
			deliver *= 1 - la.LossOf(sp.Clusters[j-1], sp.Clusters[j])
			sp.LossTo[j] = 1 - deliver
		}
		idx := int32(len(a.Paths))
		a.Paths = append(a.Paths, sp)
		a.bySrc[tr.Src] = append(a.bySrc[tr.Src], idx)
		a.byDst[tr.Dst] = append(a.byDst[tr.Dst], idx)
		seen := make(map[cluster.ClusterID]bool, len(sp.Clusters))
		for _, c := range sp.Clusters {
			if !seen[c] {
				seen[c] = true
				a.through[c] = append(a.through[c], idx)
			}
		}
	}
	return a
}

// SizeBytes estimates the serialized footprint of the path atlas (4 bytes
// per stored hop plus 16 per path header) — the quantity the paper reports
// as two orders of magnitude above iNano's link atlas.
func (a *Atlas) SizeBytes() int {
	total := 0
	for i := range a.Paths {
		total += 16 + 12*len(a.Paths[i].Clusters)
	}
	return total
}

// Prediction is a composed path with property estimates.
type Prediction struct {
	Found     bool
	Clusters  []cluster.ClusterID
	ASPath    []netsim.ASN
	LatencyMS float64
	LossRate  float64
}

// Predict composes a path from src to dst: the first segment is a measured
// path out of src, the second a measured path into dst, spliced at an
// intersection cluster. Among valid splices it picks the one minimizing
// (AS hops, latency estimate), the heuristic that iPlane found to best
// match real routes.
func (a *Atlas) Predict(src, dst netsim.Prefix, opts Options) Prediction {
	if opts.DegreeThreshold <= 0 {
		opts.DegreeThreshold = 5
	}
	outs := a.bySrc[src]
	ins := a.byDst[dst]
	if len(outs) == 0 || len(ins) == 0 {
		return Prediction{}
	}
	// Direct measurement wins if present.
	for _, oi := range outs {
		if a.Paths[oi].Dst == dst {
			return a.fromStored(&a.Paths[oi])
		}
	}
	// Index the source's out-path positions by cluster, then walk the few
	// in-paths to the destination looking for intersections; this keeps
	// the join linear in |out-hops| + |in-hops| instead of quadratic.
	type outPos struct {
		oi int32
		oc int
	}
	outAt := make(map[cluster.ClusterID][]outPos)
	for _, oi := range outs {
		for oc, c := range a.Paths[oi].Clusters {
			outAt[c] = append(outAt[c], outPos{oi, oc})
		}
	}
	var best *cand
	for _, ii := range ins {
		ip := &a.Paths[ii]
		for ic, c := range ip.Clusters {
			for _, op := range outAt[c] {
				o := &a.Paths[op.oi]
				cd := cand{out: op.oi, in: ii, oc: op.oc, ic: ic}
				if opts.Improved && !a.spliceOK(o, op.oc, ip, ic, opts.DegreeThreshold) {
					continue
				}
				cd.asHops = asHopsOf(o.AS[:op.oc+1]) + asHopsOf(ip.AS[ic:])
				cd.lat = o.LatTo[op.oc] + (ip.LatTo[len(ip.LatTo)-1] - ip.LatTo[ic])
				if best == nil || better(&cd, best, a, opts) {
					b := cd
					best = &b
				}
			}
		}
	}
	if best == nil {
		return Prediction{}
	}
	op, ip := &a.Paths[best.out], &a.Paths[best.in]
	p := Prediction{Found: true}
	p.Clusters = append(p.Clusters, op.Clusters[:best.oc+1]...)
	p.Clusters = append(p.Clusters, ip.Clusters[best.ic+1:]...)
	p.LatencyMS = best.lat
	lossOut := op.LossTo[best.oc]
	lossIn := (1 - ip.LossTo[len(ip.LossTo)-1]) / max1(1-ip.LossTo[best.ic])
	p.LossRate = 1 - (1-lossOut)*lossIn
	if p.LossRate < 0 {
		p.LossRate = 0
	}
	for _, asn := range append(append([]netsim.ASN(nil), op.AS[:best.oc+1]...), ip.AS[best.ic+1:]...) {
		if n := len(p.ASPath); n == 0 || p.ASPath[n-1] != asn {
			p.ASPath = append(p.ASPath, asn)
		}
	}
	if o, ok := a.link.PrefixAS[src]; ok && (len(p.ASPath) == 0 || p.ASPath[0] != o) {
		p.ASPath = append([]netsim.ASN{o}, p.ASPath...)
	}
	if o, ok := a.link.PrefixAS[dst]; ok && (len(p.ASPath) == 0 || p.ASPath[len(p.ASPath)-1] != o) {
		p.ASPath = append(p.ASPath, o)
	}
	return p
}

func max1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return x
}

// better orders candidate splices by (AS hops, preference wins at the
// splice for Improved mode, latency, deterministic tiebreak).
func better(x, y *cand, a *Atlas, opts Options) bool {
	if x.asHops != y.asHops {
		return x.asHops < y.asHops
	}
	if opts.Improved {
		// Prefer the candidate whose splice-point next AS is preferred
		// by the AS before it.
		xa := a.spliceNextPref(x)
		ya := a.spliceNextPref(y)
		if xa != ya {
			return xa > ya
		}
	}
	if x.lat != y.lat {
		return x.lat < y.lat
	}
	if x.out != y.out {
		return x.out < y.out
	}
	return x.in < y.in
}

// cand is one candidate splice of an out-path and an in-path.
type cand struct {
	out, in int32
	oc, ic  int // splice hop indices in each path
	asHops  int
	lat     float64
}

// spliceNextPref returns 1 when the AS at the splice prefers the in-path's
// next AS over staying on the out-path (an approximation of enforcing
// preferences at intersections), else 0.
func (a *Atlas) spliceNextPref(c *cand) int {
	op, ip := &a.Paths[c.out], &a.Paths[c.in]
	at := op.AS[c.oc]
	next := nextASAfter(ip.AS, c.ic)
	alt := nextASAfter(op.AS, c.oc)
	if next != 0 && alt != 0 && next != alt && a.link.Prefers(at, next, alt) {
		return 1
	}
	return 0
}

func nextASAfter(as []netsim.ASN, i int) netsim.ASN {
	for j := i + 1; j < len(as); j++ {
		if as[j] != as[i] {
			return as[j]
		}
	}
	return 0
}

// spliceOK applies the Improved variant's 3-tuple check to the AS sequence
// prior to, at, and after the intersection (§6.3.1).
func (a *Atlas) spliceOK(op *StoredPath, oc int, ip *StoredPath, ic int, thresh int) bool {
	at := op.AS[oc]
	prev := prevASBefore(op.AS, oc)
	next := nextASAfter(ip.AS, ic)
	if prev == 0 || next == 0 || prev == next || prev == at || at == next {
		return true
	}
	if int(a.link.ASDegree[at]) <= thresh {
		return true
	}
	return a.link.HasTuple(prev, at, next)
}

func prevASBefore(as []netsim.ASN, i int) netsim.ASN {
	for j := i - 1; j >= 0; j-- {
		if as[j] != as[i] {
			return as[j]
		}
	}
	return 0
}

// fromStored converts a directly measured path into a prediction.
func (a *Atlas) fromStored(sp *StoredPath) Prediction {
	p := Prediction{
		Found:     true,
		Clusters:  sp.Clusters,
		LatencyMS: sp.LatTo[len(sp.LatTo)-1],
		LossRate:  sp.LossTo[len(sp.LossTo)-1],
	}
	for _, asn := range sp.AS {
		if n := len(p.ASPath); n == 0 || p.ASPath[n-1] != asn {
			p.ASPath = append(p.ASPath, asn)
		}
	}
	if o, ok := a.link.PrefixAS[sp.Src]; ok && (len(p.ASPath) == 0 || p.ASPath[0] != o) {
		p.ASPath = append([]netsim.ASN{o}, p.ASPath...)
	}
	if o, ok := a.link.PrefixAS[sp.Dst]; ok && p.ASPath[len(p.ASPath)-1] != o {
		p.ASPath = append(p.ASPath, o)
	}
	return p
}

func asHopsOf(as []netsim.ASN) int {
	n := 0
	var prev netsim.ASN
	for _, a := range as {
		if a != prev {
			n++
			prev = a
		}
	}
	return n
}

// Query composes forward and reverse predictions into end-to-end estimates,
// mirroring core.Engine.Query.
func (a *Atlas) Query(src, dst netsim.Prefix, opts Options) (rttMS, loss float64, ok bool) {
	fwd := a.Predict(src, dst, opts)
	rev := a.Predict(dst, src, opts)
	if !fwd.Found || !rev.Found {
		return 0, 0, false
	}
	return fwd.LatencyMS + rev.LatencyMS, 1 - (1-fwd.LossRate)*(1-rev.LossRate), true
}

// Sources returns the prefixes with outgoing measured paths, sorted.
func (a *Atlas) Sources() []netsim.Prefix {
	out := make([]netsim.Prefix, 0, len(a.bySrc))
	for p := range a.bySrc {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThroughputMonotoneInLoss(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for _, loss := range []float64{0, 0.001, 0.01, 0.05, 0.1, 0.3} {
		bps := ThroughputBps(50, loss, p)
		if bps > prev {
			t.Fatalf("throughput increased with loss %v: %v > %v", loss, bps, prev)
		}
		prev = bps
	}
}

func TestThroughputMonotoneInRTT(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for _, rtt := range []float64{10, 20, 50, 100, 200} {
		bps := ThroughputBps(rtt, 0.01, p)
		if bps > prev {
			t.Fatalf("throughput increased with RTT %v", rtt)
		}
		prev = bps
	}
}

func TestLosslessCapsAtWindow(t *testing.T) {
	p := DefaultParams()
	want := p.WMaxSeg * float64(p.MSS) / 0.1 // 100 ms RTT
	if got := ThroughputBps(100, 0, p); math.Abs(got-want) > 1 {
		t.Fatalf("lossless throughput %v, want window cap %v", got, want)
	}
}

func TestTransferTimeShortDominatedByRTT(t *testing.T) {
	p := DefaultParams()
	// A 30KB transfer is a handful of round trips; halving RTT should
	// roughly halve the time, while moderate loss barely matters.
	t100 := TransferTimeMS(30_000, 100, 0, p)
	t50 := TransferTimeMS(30_000, 50, 0, p)
	if ratio := t100 / t50; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("30KB time ratio at 2x RTT = %v, want ~2", ratio)
	}
}

func TestTransferTimeLargeSensitiveToLoss(t *testing.T) {
	p := DefaultParams()
	clean := TransferTimeMS(1_500_000, 50, 0, p)
	lossy := TransferTimeMS(1_500_000, 50, 0.05, p)
	if lossy < clean*2 {
		t.Errorf("1.5MB at 5%% loss (%v ms) should be much slower than lossless (%v ms)", lossy, clean)
	}
}

func TestTransferTimeProperties(t *testing.T) {
	p := DefaultParams()
	f := func(size uint16, rttRaw, lossRaw uint8) bool {
		sz := int(size) + 1
		rtt := float64(rttRaw)/4 + 1
		loss := float64(lossRaw) / 512 // up to ~0.5
		tt := TransferTimeMS(sz, rtt, loss, p)
		return tt >= rtt && !math.IsNaN(tt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := TransferTimeMS(0, 50, 0, p); got != 0 {
		t.Fatalf("zero-size transfer takes %v ms", got)
	}
}

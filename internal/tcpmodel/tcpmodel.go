// Package tcpmodel provides the TCP performance models the paper's CDN
// experiment decides with (§7.1): the PFTK steady-state throughput model of
// Padhye et al. [37] and a Cardwell-style slow-start model [8] for short
// transfers.
package tcpmodel

import "math"

// Params are the TCP constants shared by both models.
type Params struct {
	MSS        int     // segment size in bytes
	InitWindow int     // initial congestion window in segments
	WMaxSeg    float64 // receiver window cap in segments
	B          float64 // segments acked per ACK (delayed ACKs: 2)
	RTOMS      float64 // retransmission timeout in ms
}

// DefaultParams matches the common 1460-byte MSS configuration.
func DefaultParams() Params {
	return Params{MSS: 1460, InitWindow: 3, WMaxSeg: 64, B: 2, RTOMS: 3000}
}

// ThroughputBps returns PFTK steady-state throughput in bytes/second for a
// path with the given RTT and loss rate. With zero loss the window cap
// governs.
func ThroughputBps(rttMS, loss float64, p Params) float64 {
	if rttMS <= 0 {
		rttMS = 1
	}
	rtt := rttMS / 1000
	capBps := p.WMaxSeg * float64(p.MSS) / rtt
	if loss <= 0 {
		return capBps
	}
	if loss >= 1 {
		return 0
	}
	// PFTK full model, segments/sec.
	rto := p.RTOMS / 1000
	f := rtt*math.Sqrt(2*p.B*loss/3) +
		rto*math.Min(1, 3*math.Sqrt(3*p.B*loss/8))*loss*(1+32*loss*loss)
	segRate := 1 / f
	bps := segRate * float64(p.MSS)
	if bps > capBps {
		return capBps
	}
	return bps
}

// TransferTimeMS estimates the download time of sizeBytes over a connection
// with the given RTT and loss: connection setup, slow-start rounds, then
// steady-state at the PFTK rate.
func TransferTimeMS(sizeBytes int, rttMS, loss float64, p Params) float64 {
	if sizeBytes <= 0 {
		return 0
	}
	if rttMS <= 0 {
		rttMS = 1
	}
	// Handshake: one RTT before the request; first data arrives one RTT
	// after.
	total := rttMS
	segs := (sizeBytes + p.MSS - 1) / p.MSS

	// Slow start: window doubles each round starting at InitWindow,
	// capped by WMaxSeg and cut short by the first expected loss.
	window := float64(p.InitWindow)
	sent := 0.0
	rounds := 0.0
	ssCap := p.WMaxSeg
	if loss > 0 {
		// Expected slow-start exit window per PFTK-extended short-flow
		// models: E[W] ~ sqrt(8/(3*b*p))/2 approximation, bounded below.
		exit := math.Sqrt(8/(3*p.B*loss)) / 2
		if exit < float64(p.InitWindow) {
			exit = float64(p.InitWindow)
		}
		if exit < ssCap {
			ssCap = exit
		}
	}
	for sent < float64(segs) && window < ssCap {
		sent += window
		window *= 2
		rounds++
	}
	if sent >= float64(segs) {
		// Entire transfer fits in slow start; charge the rounds used.
		return total + rounds*rttMS
	}
	total += rounds * rttMS
	remaining := (float64(segs) - sent) * float64(p.MSS)
	bps := ThroughputBps(rttMS, loss, p)
	if bps <= 0 {
		return math.Inf(1)
	}
	return total + remaining/bps*1000
}

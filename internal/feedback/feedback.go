// Package feedback closes the paper's measurement feedback loop (§4.3.1,
// §5 "Client-side Measurements"): clients compare predicted against
// observed path performance, aggregate the error per destination cluster,
// and spend a small budget of corrective traceroutes on the destinations
// the atlas mispredicts worst. The corrective measurements merge into the
// FROM_SRC plane of the local atlas copy-on-write, so predictions out of
// this host sharpen over time without a server round trip.
//
// The package has three parts, composable but independently usable:
//
//   - Tracker: aggregates observed-vs-predicted RTT samples per
//     destination cluster (EWMA relative error, sample counts, staleness)
//     and ranks the worst-mispredicted destinations.
//   - Corrector: a budgeted scheduler that turns the Tracker's ranking
//     into corrective traceroutes through a pluggable Prober and merges
//     the results into the atlas.
//   - Report parsing: the NDJSON wire format of inanod's /v1/feedback
//     endpoint, hardened against hostile input (fuzzed).
//
// inano.Client owns a Tracker and wires the merge side (AddTraceroutes);
// internal/server exposes the loop over HTTP.
package feedback

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"inano/internal/netsim"
)

// Hop is one observed hop of a client-side traceroute. A zero IP records
// an unresponsive hop ('*').
type Hop struct {
	IP    netsim.IP
	RTTMS float64
}

// Traceroute is a forward path measured by a client host.
type Traceroute struct {
	Src  netsim.Prefix
	Dst  netsim.Prefix
	Hops []Hop
	// PredictedRTTMS records what the local atlas predicted for
	// (Src, Dst) when the traceroute was scheduled; together with the
	// measured destination-host RTT it yields the per-destination
	// residual correction (atlas.AdjustMS). Predicted reports whether a
	// prediction existed. Both optional: zero values just skip residual
	// learning.
	PredictedRTTMS float64
	Predicted      bool
}

// MeasuredRTT returns the end-to-end RTT the traceroute observed: the RTT
// of a final hop answered by the destination host itself. ok is false
// when the destination never answered.
func (tr *Traceroute) MeasuredRTT() (float64, bool) {
	if len(tr.Hops) == 0 {
		return 0, false
	}
	h := tr.Hops[len(tr.Hops)-1]
	if h.IP == 0 || netsim.PrefixOf(h.IP) != tr.Dst {
		return 0, false
	}
	return h.RTTMS, true
}

// Observation is one observed-vs-predicted performance report: a client
// measured RTTMS to Dst and tells the daemon so the error tracker can
// compare it with the prediction it would have served.
type Observation struct {
	Src   netsim.IP
	Dst   netsim.IP
	RTTMS float64
}

// Report-parsing limits. Exported so the server and the fuzz target agree
// on the hardening contract.
const (
	// MaxLineBytes caps one NDJSON observation line.
	MaxLineBytes = 4 << 10
	// MaxObservations caps observations accepted from one report.
	MaxObservations = 10_000
	// MaxObservedRTTMS rejects physically absurd RTT claims.
	MaxObservedRTTMS = 60_000
)

// ParseReport decodes an NDJSON observation report, one
// {"src":"a.b.c.d","dst":"e.f.g.h","rtt_ms":N} object per line. Blank
// lines are skipped. It is hardened for hostile input: per-line and
// per-report size caps, strict IPv4 parsing, finite positive RTTs. On a
// malformed line it returns the observations parsed so far together with
// an error naming the line — callers may account the good prefix and
// reject the rest.
func ParseReport(r io.Reader) ([]Observation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024), MaxLineBytes)
	var out []Observation
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if len(out) >= MaxObservations {
			return out, fmt.Errorf("line %d: report exceeds %d observations", lineNo, MaxObservations)
		}
		var w struct {
			Src   string  `json:"src"`
			Dst   string  `json:"dst"`
			RTTMS float64 `json:"rtt_ms"`
		}
		if err := json.Unmarshal([]byte(line), &w); err != nil {
			return out, fmt.Errorf("line %d: bad observation: %v", lineNo, err)
		}
		src, err := ParseIPv4(w.Src)
		if err != nil {
			return out, fmt.Errorf("line %d: src: %v", lineNo, err)
		}
		dst, err := ParseIPv4(w.Dst)
		if err != nil {
			return out, fmt.Errorf("line %d: dst: %v", lineNo, err)
		}
		if !(w.RTTMS > 0) || math.IsInf(w.RTTMS, 0) || w.RTTMS > MaxObservedRTTMS {
			return out, fmt.Errorf("line %d: bad rtt_ms %v", lineNo, w.RTTMS)
		}
		out = append(out, Observation{Src: src, Dst: dst, RTTMS: w.RTTMS})
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("line %d: %w", lineNo+1, err)
	}
	return out, nil
}

// ParseIPv4 parses a strict dotted-quad IPv4 address (no leading zeros,
// exactly four octets). It delegates to netsim.ParseIPv4 so ingest and
// the cluster router agree on one parser.
func ParseIPv4(s string) (netsim.IP, error) {
	return netsim.ParseIPv4(s)
}

package feedback

import (
	"context"
	"errors"
	"testing"
	"time"

	"inano/internal/netsim"
)

// seedTracker fills a tracker with n badly mispredicted destinations on
// distinct clusters.
func seedTracker(n int) *Tracker {
	tr := NewTracker(TrackerConfig{})
	now := time.Now()
	for i := 0; i < n; i++ {
		tr.Record(int32(i), netsim.Prefix(1), netsim.Prefix(100+i), 0, 100, false, now)
	}
	return tr
}

func TestCorrectorHonorsBudget(t *testing.T) {
	tr := seedTracker(20)
	var probed []netsim.Prefix
	prober := ProberFunc(func(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
		probed = append(probed, dst)
		return Traceroute{Src: src, Dst: dst, Hops: []Hop{{IP: 1, RTTMS: 5}}}, nil
	})
	merged := 0
	cor := NewCorrector(tr, prober, func(trs []Traceroute) int {
		merged += len(trs)
		return len(trs)
	}, Config{Budget: 5, Cooldown: time.Hour})

	r := cor.RunOnce(context.Background())
	if r.Probes != 5 || r.Targets != 5 || len(probed) != 5 {
		t.Fatalf("budget not honored: %+v probed=%d", r, len(probed))
	}
	if r.Merged != 5 || merged != 5 {
		t.Fatalf("merge accounting: %+v merged=%d", r, merged)
	}
	if u := r.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v, want 1", u)
	}

	// The cooldown keeps the first round's targets off the second round's
	// schedule: fresh destinations are probed instead.
	seen := make(map[netsim.Prefix]bool)
	for _, d := range probed {
		seen[d] = true
	}
	probed = probed[:0]
	cor.RunOnce(context.Background())
	for _, d := range probed {
		if seen[d] {
			t.Fatalf("destination %v re-probed within cooldown", d)
		}
	}
}

func TestCorrectorProbeErrors(t *testing.T) {
	tr := seedTracker(3)
	prober := ProberFunc(func(context.Context, netsim.Prefix, netsim.Prefix) (Traceroute, error) {
		return Traceroute{}, errors.New("probe failed")
	})
	mergeCalled := false
	cor := NewCorrector(tr, prober, func([]Traceroute) int {
		mergeCalled = true
		return 0
	}, Config{Budget: 3})
	r := cor.RunOnce(context.Background())
	if r.Probes != 3 || r.ProbeErrors != 3 || r.Merged != 0 {
		t.Fatalf("error accounting: %+v", r)
	}
	if mergeCalled {
		t.Fatal("merge called with no successful traceroutes")
	}
	// Failed probes still consume the cooldown: the same unreachable
	// destinations must not monopolize the next round's budget.
	r = cor.RunOnce(context.Background())
	if r.Probes != 0 {
		t.Fatalf("failed destinations re-probed within cooldown: %+v", r)
	}
}

func TestCorrectorPredictHook(t *testing.T) {
	tr := seedTracker(1)
	prober := ProberFunc(func(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
		return Traceroute{Src: src, Dst: dst}, nil
	})
	var got Traceroute
	cor := NewCorrector(tr, prober, func(trs []Traceroute) int {
		got = trs[0]
		return 0
	}, Config{
		Budget:  1,
		Predict: func(src, dst netsim.Prefix) (float64, bool) { return 123.5, true },
	})
	cor.RunOnce(context.Background())
	if !got.Predicted || got.PredictedRTTMS != 123.5 {
		t.Fatalf("predict hook not threaded into traceroute: %+v", got)
	}
}

// TestCorrectorCooldownExpiresOnFakeClock drives the cooldown through an
// injected clock: a probed destination is ineligible inside the cooldown
// window and schedulable again after it — with no wall-clock sleeps, so
// the test cannot flake under load.
func TestCorrectorCooldownExpiresOnFakeClock(t *testing.T) {
	tr := NewTracker(TrackerConfig{StaleAfter: 24 * time.Hour})
	base := time.Unix(10_000, 0)
	tr.Record(1, netsim.Prefix(1), netsim.Prefix(100), 0, 100, false, base)

	probed := 0
	prober := ProberFunc(func(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
		probed++
		return Traceroute{Src: src, Dst: dst, Hops: []Hop{{IP: 1, RTTMS: 5}}}, nil
	})
	cor := NewCorrector(tr, prober, func(trs []Traceroute) int { return len(trs) },
		Config{Budget: 1, Cooldown: 10 * time.Minute})
	now := base
	cor.nowFn = func() time.Time { return now }

	if r := cor.RunOnce(context.Background()); r.Probes != 1 {
		t.Fatalf("first round: %+v", r)
	}
	// Inside the cooldown nothing is eligible — even many rounds later.
	now = now.Add(9 * time.Minute)
	tr.Record(1, netsim.Prefix(1), netsim.Prefix(100), 0, 100, false, now)
	if r := cor.RunOnce(context.Background()); r.Probes != 0 {
		t.Fatalf("probed inside cooldown: %+v", r)
	}
	// Past the cooldown the destination is schedulable again.
	now = now.Add(2 * time.Minute)
	if r := cor.RunOnce(context.Background()); r.Probes != 1 {
		t.Fatalf("cooldown never expired: %+v", r)
	}
	if probed != 2 {
		t.Fatalf("probes issued = %d, want 2", probed)
	}
}

// TestCorrectorStalenessOnFakeClock: tracked error older than the
// tracker's StaleAfter says nothing about the current atlas and must not
// be probed, however large it is.
func TestCorrectorStalenessOnFakeClock(t *testing.T) {
	tr := NewTracker(TrackerConfig{StaleAfter: 15 * time.Minute})
	base := time.Unix(10_000, 0)
	tr.Record(1, netsim.Prefix(1), netsim.Prefix(100), 0, 100, false, base)

	cor := NewCorrector(tr, ProberFunc(func(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
		return Traceroute{Src: src, Dst: dst}, nil
	}), func(trs []Traceroute) int { return 0 }, Config{Budget: 4})
	now := base.Add(16 * time.Minute)
	cor.nowFn = func() time.Time { return now }

	if r := cor.RunOnce(context.Background()); r.Probes != 0 {
		t.Fatalf("stale destination probed: %+v", r)
	}
	// A fresh observation revives it.
	tr.Record(1, netsim.Prefix(1), netsim.Prefix(100), 0, 100, false, now)
	if r := cor.RunOnce(context.Background()); r.Probes != 1 {
		t.Fatalf("fresh destination not probed: %+v", r)
	}
}

func TestCorrectorObserveHook(t *testing.T) {
	tr := seedTracker(2)
	prober := ProberFunc(func(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
		return Traceroute{Src: src, Dst: dst, Hops: []Hop{{IP: 1, RTTMS: 5}}}, nil
	})
	var observed []Traceroute
	cor := NewCorrector(tr, prober, func(trs []Traceroute) int { return len(trs) }, Config{
		Budget:  2,
		Observe: func(trs []Traceroute) { observed = append(observed, trs...) },
	})
	cor.RunOnce(context.Background())
	if len(observed) != 2 {
		t.Fatalf("observe hook saw %d traceroutes, want 2", len(observed))
	}
}

func TestCorrectorCancelledContext(t *testing.T) {
	tr := seedTracker(10)
	probes := 0
	prober := ProberFunc(func(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
		probes++
		return Traceroute{Src: src, Dst: dst}, nil
	})
	cor := NewCorrector(tr, prober, func(trs []Traceroute) int { return 0 }, Config{Budget: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := cor.RunOnce(ctx)
	if probes != 0 || r.Probes != 0 {
		t.Fatalf("probes issued under a cancelled context: %+v", r)
	}
}

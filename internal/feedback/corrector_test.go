package feedback

import (
	"context"
	"errors"
	"testing"
	"time"

	"inano/internal/netsim"
)

// seedTracker fills a tracker with n badly mispredicted destinations on
// distinct clusters.
func seedTracker(n int) *Tracker {
	tr := NewTracker(TrackerConfig{})
	now := time.Now()
	for i := 0; i < n; i++ {
		tr.Record(int32(i), netsim.Prefix(1), netsim.Prefix(100+i), 0, 100, false, now)
	}
	return tr
}

func TestCorrectorHonorsBudget(t *testing.T) {
	tr := seedTracker(20)
	var probed []netsim.Prefix
	prober := ProberFunc(func(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
		probed = append(probed, dst)
		return Traceroute{Src: src, Dst: dst, Hops: []Hop{{IP: 1, RTTMS: 5}}}, nil
	})
	merged := 0
	cor := NewCorrector(tr, prober, func(trs []Traceroute) int {
		merged += len(trs)
		return len(trs)
	}, Config{Budget: 5, Cooldown: time.Hour})

	r := cor.RunOnce(context.Background())
	if r.Probes != 5 || r.Targets != 5 || len(probed) != 5 {
		t.Fatalf("budget not honored: %+v probed=%d", r, len(probed))
	}
	if r.Merged != 5 || merged != 5 {
		t.Fatalf("merge accounting: %+v merged=%d", r, merged)
	}
	if u := r.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v, want 1", u)
	}

	// The cooldown keeps the first round's targets off the second round's
	// schedule: fresh destinations are probed instead.
	seen := make(map[netsim.Prefix]bool)
	for _, d := range probed {
		seen[d] = true
	}
	probed = probed[:0]
	cor.RunOnce(context.Background())
	for _, d := range probed {
		if seen[d] {
			t.Fatalf("destination %v re-probed within cooldown", d)
		}
	}
}

func TestCorrectorProbeErrors(t *testing.T) {
	tr := seedTracker(3)
	prober := ProberFunc(func(context.Context, netsim.Prefix, netsim.Prefix) (Traceroute, error) {
		return Traceroute{}, errors.New("probe failed")
	})
	mergeCalled := false
	cor := NewCorrector(tr, prober, func([]Traceroute) int {
		mergeCalled = true
		return 0
	}, Config{Budget: 3})
	r := cor.RunOnce(context.Background())
	if r.Probes != 3 || r.ProbeErrors != 3 || r.Merged != 0 {
		t.Fatalf("error accounting: %+v", r)
	}
	if mergeCalled {
		t.Fatal("merge called with no successful traceroutes")
	}
	// Failed probes still consume the cooldown: the same unreachable
	// destinations must not monopolize the next round's budget.
	r = cor.RunOnce(context.Background())
	if r.Probes != 0 {
		t.Fatalf("failed destinations re-probed within cooldown: %+v", r)
	}
}

func TestCorrectorPredictHook(t *testing.T) {
	tr := seedTracker(1)
	prober := ProberFunc(func(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
		return Traceroute{Src: src, Dst: dst}, nil
	})
	var got Traceroute
	cor := NewCorrector(tr, prober, func(trs []Traceroute) int {
		got = trs[0]
		return 0
	}, Config{
		Budget:  1,
		Predict: func(src, dst netsim.Prefix) (float64, bool) { return 123.5, true },
	})
	cor.RunOnce(context.Background())
	if !got.Predicted || got.PredictedRTTMS != 123.5 {
		t.Fatalf("predict hook not threaded into traceroute: %+v", got)
	}
}

func TestCorrectorCancelledContext(t *testing.T) {
	tr := seedTracker(10)
	probes := 0
	prober := ProberFunc(func(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
		probes++
		return Traceroute{Src: src, Dst: dst}, nil
	})
	cor := NewCorrector(tr, prober, func(trs []Traceroute) int { return 0 }, Config{Budget: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := cor.RunOnce(ctx)
	if probes != 0 || r.Probes != 0 {
		t.Fatalf("probes issued under a cancelled context: %+v", r)
	}
}

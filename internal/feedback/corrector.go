package feedback

import (
	"context"
	"time"

	"inano/internal/netsim"
	"inano/internal/trace"
)

// Prober issues one corrective traceroute. Implementations range from the
// simulated measurement harness (SimProber, used by tests and the
// evaluation) to a real traceroute binary on a deployed host.
type Prober interface {
	Probe(ctx context.Context, src, dst netsim.Prefix) (Traceroute, error)
}

// ProberFunc adapts a function to the Prober interface.
type ProberFunc func(ctx context.Context, src, dst netsim.Prefix) (Traceroute, error)

// Probe implements Prober.
func (f ProberFunc) Probe(ctx context.Context, src, dst netsim.Prefix) (Traceroute, error) {
	return f(ctx, src, dst)
}

// SimProber backs the prober with the synthetic world's measurement
// harness — corrective traceroutes observe the simulated ground truth the
// same way the atlas-building campaign did.
type SimProber struct {
	Meter *trace.Meter
}

// Probe implements Prober against the simulated meter.
func (p SimProber) Probe(_ context.Context, src, dst netsim.Prefix) (Traceroute, error) {
	mt := p.Meter.Traceroute(src, dst)
	tr := Traceroute{Src: src, Dst: dst, Hops: make([]Hop, len(mt.Hops))}
	for i, h := range mt.Hops {
		tr.Hops[i] = Hop{IP: h.IP, RTTMS: h.RTTMS}
	}
	return tr, nil
}

// Config tunes the corrective scheduler. The zero value uses defaults.
type Config struct {
	// Budget is the maximum corrective traceroutes per round (default 8;
	// the paper's clients issue a comparably small daily budget).
	Budget int
	// Interval spaces rounds of the background loop (default 1m).
	Interval time.Duration
	// MinSamples gates a destination's eligibility (default 1).
	MinSamples int
	// MinError is the EWMA error below which a destination is considered
	// well-predicted and never probed (default 0.10 = 10%).
	MinError float64
	// Cooldown is how long a just-probed destination is ineligible
	// (default 5m), preventing the budget from chasing one stubborn
	// cluster every round.
	Cooldown time.Duration
	// Predict returns the currently served RTT prediction for a pair
	// (ok=false when unpredicted). When set, each probe's traceroute
	// carries the prediction it was scheduled against, enabling
	// per-destination residual learning in the merge (atlas.AdjustMS).
	// inano.Client.NewCorrector wires this automatically.
	Predict func(src, dst netsim.Prefix) (float64, bool)
	// Observe, when set, receives each round's successfully measured
	// traceroutes after the merge — the hook upstream observation sharing
	// rides on (Uploader.Observe queues them for the build server).
	Observe func([]Traceroute)
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 1
	}
	if c.MinError <= 0 {
		c.MinError = 0.10
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Minute
	}
	return c
}

// Round reports one corrective round for metrics and logs.
type Round struct {
	// Budget is the round's probe budget.
	Budget int
	// Targets is how many eligible destinations were scheduled (<= Budget).
	Targets int
	// Probes is how many traceroutes were actually issued.
	Probes int
	// ProbeErrors counts probes that failed.
	ProbeErrors int
	// Merged is the number of atlas changes the round's traceroutes
	// contributed.
	Merged int
}

// Utilization is the fraction of the budget spent (0 when the budget is 0).
func (r Round) Utilization() float64 {
	if r.Budget == 0 {
		return 0
	}
	return float64(r.Probes) / float64(r.Budget)
}

// Corrector turns tracked prediction error into corrective measurements:
// each round it asks the Tracker for the worst-mispredicted destinations
// within budget, traceroutes them through the Prober, and hands the
// results to the merge function (inano.Client.AddTraceroutes in the wired
// client, which patches the atlas copy-on-write).
type Corrector struct {
	tracker *Tracker
	prober  Prober
	merge   func([]Traceroute) int
	cfg     Config
	nowFn   func() time.Time // injected clock; tests use a fake
}

// NewCorrector wires a corrector. merge must be safe for concurrent use
// with queries (Client.AddTraceroutes is).
func NewCorrector(t *Tracker, p Prober, merge func([]Traceroute) int, cfg Config) *Corrector {
	return &Corrector{tracker: t, prober: p, merge: merge, cfg: cfg.withDefaults(), nowFn: time.Now}
}

// Config returns the corrector's effective (defaulted) configuration.
func (c *Corrector) Config() Config { return c.cfg }

// RunOnce executes one corrective round and returns its accounting. It
// stops issuing probes when ctx is cancelled; results already measured
// are still merged.
func (c *Corrector) RunOnce(ctx context.Context) Round {
	now := c.nowFn()
	targets := c.tracker.Worst(c.cfg.Budget, c.cfg.MinSamples, c.cfg.MinError, c.cfg.Cooldown, now)
	r := Round{Budget: c.cfg.Budget, Targets: len(targets)}
	var trs []Traceroute
	for _, tg := range targets {
		if ctx.Err() != nil {
			break
		}
		tr, err := c.prober.Probe(ctx, tg.Src, tg.Dst)
		r.Probes++
		if err != nil {
			r.ProbeErrors++
			// The probe was spent: cool the destination down so a
			// persistently unreachable cluster cannot monopolize every
			// round's budget.
			c.tracker.MarkProbed(tg.Cluster, now)
			continue
		}
		if c.cfg.Predict != nil {
			tr.PredictedRTTMS, tr.Predicted = c.cfg.Predict(tg.Src, tg.Dst)
		}
		trs = append(trs, tr)
		c.tracker.MarkCorrected(tg.Cluster, now)
	}
	if len(trs) > 0 {
		r.Merged = c.merge(trs)
		if c.cfg.Observe != nil {
			c.cfg.Observe(trs)
		}
	}
	return r
}

// Run executes rounds every Interval until ctx is done, reporting each
// round to onRound (nil = no reporting). An immediate first round runs at
// start so a freshly booted daemon with queued error does not wait a full
// interval.
func (c *Corrector) Run(ctx context.Context, onRound func(Round)) {
	if onRound == nil {
		onRound = func(Round) {}
	}
	onRound(c.RunOnce(ctx))
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			onRound(c.RunOnce(ctx))
		}
	}
}

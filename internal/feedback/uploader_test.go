package feedback

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"inano/internal/netsim"
)

func testObs(i int) UpstreamObservation {
	return UpstreamObservation{
		Src: netsim.IP(0x0a000101), Dst: netsim.IP(0x0a000201 + uint32(i)),
		RTTMS: 50 + float64(i), PredictedMS: 40,
	}
}

// obsServer answers /v1/observations accepting everything (or failing the
// first failN requests with 503).
func obsServer(t *testing.T, failN *atomic.Int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var received atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failN != nil && failN.Add(-1) >= 0 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		obs, err := ParseObservationReport(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		received.Add(int64(len(obs)))
		fmt.Fprintf(w, `{"accepted":%d}`, len(obs))
	}))
	t.Cleanup(srv.Close)
	return srv, &received
}

func TestUploaderFlush(t *testing.T) {
	srv, received := obsServer(t, nil)
	u := NewUploader(UploaderConfig{URL: srv.URL, MaxBatch: 4})
	for i := 0; i < 10; i++ {
		if !u.Add(testObs(i)) {
			t.Fatalf("observation %d dropped below the cap", i)
		}
	}
	n, err := u.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || received.Load() != 10 {
		t.Fatalf("shipped %d (server saw %d), want 10", n, received.Load())
	}
	if u.Len() != 0 {
		t.Fatalf("queue not drained: %d", u.Len())
	}
	st := u.Stats()
	if st.Shipped != 10 || st.Flushes != 3 { // 4+4+2 under MaxBatch=4
		t.Fatalf("stats: %+v", st)
	}
}

func TestUploaderBufferCapDropsOldest(t *testing.T) {
	u := NewUploader(UploaderConfig{URL: "http://unused", MaxBuffered: 3})
	for i := 0; i < 5; i++ {
		u.Add(testObs(i))
	}
	if u.Len() != 3 {
		t.Fatalf("queue = %d, want cap 3", u.Len())
	}
	st := u.Stats()
	if st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", st.Dropped)
	}
	// The survivors are the newest three.
	u.mu.Lock()
	first := u.queue[0]
	u.mu.Unlock()
	if first.Dst != testObs(2).Dst {
		t.Fatalf("oldest surviving = %v, want obs 2", first.Dst)
	}
}

func TestUploaderRetryBackoff(t *testing.T) {
	var fail atomic.Int64
	fail.Store(2) // first two attempts 503, third succeeds
	srv, received := obsServer(t, &fail)
	var sleeps []time.Duration
	u := NewUploader(UploaderConfig{
		URL: srv.URL, MaxAttempts: 3, Backoff: 10 * time.Millisecond,
		sleep: func(_ context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		},
	})
	u.Add(testObs(0))
	n, err := u.Flush(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("flush: n=%d err=%v", n, err)
	}
	if received.Load() != 1 {
		t.Fatalf("server saw %d", received.Load())
	}
	// Two retries with doubling backoff.
	if len(sleeps) != 2 || sleeps[0] != 10*time.Millisecond || sleeps[1] != 20*time.Millisecond {
		t.Fatalf("backoff schedule: %v", sleeps)
	}
}

func TestUploaderRequeuesOnFailure(t *testing.T) {
	var fail atomic.Int64
	fail.Store(1000) // never succeeds
	srv, _ := obsServer(t, &fail)
	u := NewUploader(UploaderConfig{
		URL: srv.URL, MaxAttempts: 2, Backoff: time.Millisecond,
		sleep: func(context.Context, time.Duration) error { return nil },
	})
	for i := 0; i < 3; i++ {
		u.Add(testObs(i))
	}
	if _, err := u.Flush(context.Background()); err == nil {
		t.Fatal("flush succeeded against a failing server")
	}
	if u.Len() != 3 {
		t.Fatalf("failed batch not re-queued: %d", u.Len())
	}
	if st := u.Stats(); st.FlushErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestUploaderBadRequestNotRetried(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "malformed"})
	}))
	defer srv.Close()
	u := NewUploader(UploaderConfig{
		URL: srv.URL, MaxAttempts: 5, Backoff: time.Millisecond,
		sleep: func(context.Context, time.Duration) error { return nil },
	})
	u.Add(testObs(0))
	if _, err := u.Flush(context.Background()); err == nil {
		t.Fatal("flush reported success on a 400")
	}
	if attempts.Load() != 1 {
		t.Fatalf("400 retried %d times; a final verdict must not be retried", attempts.Load())
	}
	// A finally-rejected batch is dropped, not re-queued: it must not
	// head-of-line-block fresh observations behind a poison batch.
	if u.Len() != 0 {
		t.Fatalf("finally rejected batch re-queued: %d", u.Len())
	}
	if st := u.Stats(); st.Rejected != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestUploaderRateLimitedTailRequeued: the server's partial grant is its
// "retry after backing off" contract — the rate-limited tail goes back to
// the front of the queue and the flush stops instead of hammering the
// drained bucket (or dropping the tail).
func TestUploaderRateLimitedTailRequeued(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs, _ := ParseObservationReport(r.Body)
		grant := 2
		if len(obs) < grant {
			grant = len(obs)
		}
		fmt.Fprintf(w, `{"accepted":%d,"rate_limited":%d}`, grant, len(obs)-grant)
	}))
	defer srv.Close()
	u := NewUploader(UploaderConfig{URL: srv.URL, MaxBatch: 8})
	for i := 0; i < 5; i++ {
		u.Add(testObs(i))
	}
	n, err := u.Flush(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("flush: n=%d err=%v", n, err)
	}
	if u.Len() != 3 {
		t.Fatalf("rate-limited tail not re-queued: %d buffered", u.Len())
	}
	// The tail is the *unprocessed* observations, in order.
	u.mu.Lock()
	first := u.queue[0]
	u.mu.Unlock()
	if first.Dst != testObs(2).Dst {
		t.Fatalf("re-queued head = %v, want obs 2", first.Dst)
	}
	// A later flush (bucket refilled) drains the rest.
	if n, err := u.Flush(context.Background()); err != nil || n != 2 {
		t.Fatalf("second flush: n=%d err=%v", n, err)
	}
	if n, err := u.Flush(context.Background()); err != nil || n != 1 {
		t.Fatalf("third flush: n=%d err=%v", n, err)
	}
}

func TestUploaderObserveFromTraceroutes(t *testing.T) {
	srv, received := obsServer(t, nil)
	u := NewUploader(UploaderConfig{URL: srv.URL})
	dst := netsim.Prefix(0x0a0002)
	trs := []Traceroute{
		{ // carries a residual: queued
			Src: netsim.Prefix(0x0a0001), Dst: dst,
			Hops:           []Hop{{IP: dst.HostIP(), RTTMS: 50}},
			PredictedRTTMS: 40, Predicted: true,
		},
		{ // destination never answered: skipped
			Src: netsim.Prefix(0x0a0001), Dst: dst,
			Hops:           []Hop{{IP: 0, RTTMS: 0}},
			PredictedRTTMS: 40, Predicted: true,
		},
	}
	u.Observe(trs)
	if u.Len() != 1 {
		t.Fatalf("queued %d observations, want 1", u.Len())
	}
	if n, err := u.Flush(context.Background()); err != nil || n != 1 || received.Load() != 1 {
		t.Fatalf("flush: n=%d err=%v server=%d", n, err, received.Load())
	}
}

package feedback

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"inano/internal/netsim"
)

func TestObservationRoundTrip(t *testing.T) {
	obs := []UpstreamObservation{
		{Src: 0x0a000101, Dst: 0x0a000201, RTTMS: 42.5, PredictedMS: 38.25},
		{Src: 0x0a000301, Dst: 0x0a000401, RTTMS: 120, PredictedMS: 200,
			Hops: []Hop{{IP: 0x0a000302, RTTMS: 1.5}, {IP: 0, RTTMS: 0}, {IP: 0x0a000401, RTTMS: 120}}},
	}
	var buf bytes.Buffer
	if err := EncodeObservations(&buf, obs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseObservationReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("got %d observations, want %d", len(got), len(obs))
	}
	for i := range obs {
		if got[i].Src != obs[i].Src || got[i].Dst != obs[i].Dst ||
			got[i].RTTMS != obs[i].RTTMS || got[i].PredictedMS != obs[i].PredictedMS {
			t.Fatalf("observation %d mismatch: %+v vs %+v", i, got[i], obs[i])
		}
		if len(got[i].Hops) != len(obs[i].Hops) {
			t.Fatalf("observation %d hops: %d vs %d", i, len(got[i].Hops), len(obs[i].Hops))
		}
		for j := range obs[i].Hops {
			if got[i].Hops[j] != obs[i].Hops[j] {
				t.Fatalf("observation %d hop %d: %+v vs %+v", i, j, got[i].Hops[j], obs[i].Hops[j])
			}
		}
	}
	if r := obs[1].ResidualMS(); r != -80 {
		t.Fatalf("residual = %v, want -80", r)
	}
}

func TestObservationParserRejects(t *testing.T) {
	cases := []string{
		`{"src":"bad","dst":"10.0.2.1","rtt_ms":10,"predicted_ms":5}`,
		`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":-1,"predicted_ms":5}`,
		`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":10}`,                     // no prediction
		`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":10,"predicted_ms":1e99}`, // absurd prediction
		`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":10,"predicted_ms":5,"hops":[{"ip":"zap","rtt_ms":1}]}`,
		`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":10,"predicted_ms":5,"hops":[{"ip":"1.2.3.4","rtt_ms":-3}]}`,
		`not json`,
	}
	for _, c := range cases {
		if obs, err := ParseObservationReport(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q -> %+v", c, obs)
		}
	}
	// A good prefix before a bad line is still returned with the error.
	good := `{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":10,"predicted_ms":5}`
	obs, err := ParseObservationReport(strings.NewReader(good + "\nnope\n"))
	if err == nil || len(obs) != 1 {
		t.Fatalf("good prefix not preserved: %d obs, err=%v", len(obs), err)
	}
	// Hop-count cap.
	var b strings.Builder
	b.WriteString(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":10,"predicted_ms":5,"hops":[`)
	for i := 0; i <= MaxObservationHops; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"ip":"1.2.3.4","rtt_ms":1}`)
	}
	b.WriteString("]}")
	if _, err := ParseObservationReport(strings.NewReader(b.String())); err == nil {
		t.Fatal("hop cap not enforced")
	}
}

func TestObservationFromTraceroute(t *testing.T) {
	dst := netsim.Prefix(0x0a0002)
	tr := Traceroute{
		Src: netsim.Prefix(0x0a0001), Dst: dst,
		Hops:           []Hop{{IP: 0x0a000102, RTTMS: 2}, {IP: dst.HostIP(), RTTMS: 55}},
		PredictedRTTMS: 40, Predicted: true,
	}
	o, ok := ObservationFromTraceroute(&tr)
	if !ok {
		t.Fatal("traceroute with measured RTT and prediction rejected")
	}
	if o.RTTMS != 55 || o.PredictedMS != 40 || o.Dst != dst.HostIP() {
		t.Fatalf("bad observation: %+v", o)
	}
	if o.ResidualMS() != 15 {
		t.Fatalf("residual = %v, want 15", o.ResidualMS())
	}

	// Destination never answered: nothing to share.
	unreached := tr
	unreached.Hops = []Hop{{IP: 0x0a000102, RTTMS: 2}, {IP: 0, RTTMS: 0}}
	if _, ok := ObservationFromTraceroute(&unreached); ok {
		t.Fatal("unreached traceroute produced an observation")
	}
	// No prediction at schedule time: the traceroute still ships, as a
	// structure-only observation (zero PredictedMS, hops attached) — a
	// pair the local atlas cannot predict is exactly the coverage the
	// structural fold grows.
	unpredicted := tr
	unpredicted.Predicted = false
	o, ok = ObservationFromTraceroute(&unpredicted)
	if !ok || o.PredictedMS != 0 || len(o.Hops) != 2 {
		t.Fatalf("structure-only observation: ok=%v %+v", ok, o)
	}
	// ...unless the only hop is the destination itself: no residual, no
	// infrastructure tail, nothing the aggregate could use.
	bare := unpredicted
	bare.Hops = []Hop{{IP: dst.HostIP(), RTTMS: 55}}
	if _, ok := ObservationFromTraceroute(&bare); ok {
		t.Fatal("tail-less unpredicted traceroute produced an observation")
	}
}

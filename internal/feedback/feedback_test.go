package feedback

import (
	"strings"
	"testing"

	"inano/internal/netsim"
)

func TestParseReport(t *testing.T) {
	in := `{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5}

{"src":"10.0.1.1","dst":"10.0.3.1","rtt_ms":7}
`
	obs, err := ParseReport(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 {
		t.Fatalf("parsed %d observations, want 2", len(obs))
	}
	wantSrc := netsim.IP(10<<24 | 1<<8 | 1)
	if obs[0].Src != wantSrc || obs[0].RTTMS != 42.5 {
		t.Fatalf("observation 0: %+v", obs[0])
	}
}

func TestParseReportRejectsBadLines(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"bad json", `{"src":`, "line 1"},
		{"bad src", `{"src":"999.0.0.1","dst":"10.0.0.1","rtt_ms":5}`, "src"},
		{"bad dst", `{"src":"10.0.0.1","dst":"nope","rtt_ms":5}`, "dst"},
		{"octal src", `{"src":"010.0.0.1","dst":"10.0.0.1","rtt_ms":5}`, "src"},
		{"zero rtt", `{"src":"10.0.0.1","dst":"10.0.0.2","rtt_ms":0}`, "rtt_ms"},
		{"negative rtt", `{"src":"10.0.0.1","dst":"10.0.0.2","rtt_ms":-4}`, "rtt_ms"},
		{"absurd rtt", `{"src":"10.0.0.1","dst":"10.0.0.2","rtt_ms":9e9}`, "rtt_ms"},
		{"missing rtt", `{"src":"10.0.0.1","dst":"10.0.0.2"}`, "rtt_ms"},
	}
	for _, c := range cases {
		if _, err := ParseReport(strings.NewReader(c.in)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestParseReportKeepsValidPrefix(t *testing.T) {
	in := `{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5}
garbage
{"src":"10.0.1.1","dst":"10.0.3.1","rtt_ms":7}
`
	obs, err := ParseReport(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 failure", err)
	}
	if len(obs) != 1 {
		t.Fatalf("valid prefix lost: %d observations", len(obs))
	}
}

func TestParseReportBounds(t *testing.T) {
	// A line beyond MaxLineBytes fails cleanly instead of buffering forever.
	long := `{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":5,"pad":"` +
		strings.Repeat("x", MaxLineBytes) + `"}`
	if _, err := ParseReport(strings.NewReader(long)); err == nil {
		t.Fatal("oversized line accepted")
	}
	// More than MaxObservations lines are cut off with an error.
	var b strings.Builder
	for i := 0; i <= MaxObservations; i++ {
		b.WriteString(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":5}` + "\n")
	}
	obs, err := ParseReport(strings.NewReader(b.String()))
	if err == nil || !strings.Contains(err.Error(), "observations") {
		t.Fatalf("oversized report: err = %v", err)
	}
	if len(obs) != MaxObservations {
		t.Fatalf("accepted %d, want %d", len(obs), MaxObservations)
	}
}

func TestParseIPv4(t *testing.T) {
	if ip, err := ParseIPv4("1.2.3.4"); err != nil || ip != netsim.IP(1<<24|2<<16|3<<8|4) {
		t.Fatalf("ParseIPv4: %v, %v", ip, err)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.1", "01.2.3.4", "a.b.c.d", "1..2.3"} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) accepted", bad)
		}
	}
}

package feedback

import (
	"strings"
	"testing"
)

// FuzzFeedbackReport feeds the /v1/feedback NDJSON parser arbitrary
// bytes. The parser must never panic and must respect its hardening
// bounds regardless of input: at most MaxObservations results, every
// accepted observation well-formed (valid IPs re-format, RTT positive
// and sane).
func FuzzFeedbackReport(f *testing.F) {
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5}`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5}` + "\n" +
		`{"src":"1.2.3.4","dst":"4.3.2.1","rtt_ms":0.1}`))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"src":"10.0.1.1"`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":-1}`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":1e308}`))
	f.Add([]byte(strings.Repeat(`{"src":"9.9.9.9","dst":"8.8.8.8","rtt_ms":1}`+"\n", 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		obs, _ := ParseReport(strings.NewReader(string(data)))
		if len(obs) > MaxObservations {
			t.Fatalf("parser exceeded MaxObservations: %d", len(obs))
		}
		for i, o := range obs {
			if !(o.RTTMS > 0) || o.RTTMS > MaxObservedRTTMS {
				t.Fatalf("observation %d has out-of-bounds rtt %v", i, o.RTTMS)
			}
			// Accepted IPs must round-trip through the strict parser.
			if back, err := ParseIPv4(o.Src.String()); err != nil || back != o.Src {
				t.Fatalf("observation %d src does not round-trip: %v", i, o.Src)
			}
		}
	})
}

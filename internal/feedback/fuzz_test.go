package feedback

import (
	"strings"
	"testing"
)

// FuzzFeedbackReport feeds the /v1/feedback NDJSON parser arbitrary
// bytes. The parser must never panic and must respect its hardening
// bounds regardless of input: at most MaxObservations results, every
// accepted observation well-formed (valid IPs re-format, RTT positive
// and sane).
func FuzzFeedbackReport(f *testing.F) {
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5}`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5}` + "\n" +
		`{"src":"1.2.3.4","dst":"4.3.2.1","rtt_ms":0.1}`))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"src":"10.0.1.1"`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":-1}`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":1e308}`))
	f.Add([]byte(strings.Repeat(`{"src":"9.9.9.9","dst":"8.8.8.8","rtt_ms":1}`+"\n", 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		obs, _ := ParseReport(strings.NewReader(string(data)))
		if len(obs) > MaxObservations {
			t.Fatalf("parser exceeded MaxObservations: %d", len(obs))
		}
		for i, o := range obs {
			if !(o.RTTMS > 0) || o.RTTMS > MaxObservedRTTMS {
				t.Fatalf("observation %d has out-of-bounds rtt %v", i, o.RTTMS)
			}
			// Accepted IPs must round-trip through the strict parser.
			if back, err := ParseIPv4(o.Src.String()); err != nil || back != o.Src {
				t.Fatalf("observation %d src does not round-trip: %v", i, o.Src)
			}
		}
	})
}

// FuzzObservationReport feeds the /v1/observations NDJSON parser
// arbitrary bytes. Like the feedback-report target it must never panic
// and every accepted observation must satisfy the hardening contract:
// bounded counts, sane RTTs and predictions, bounded well-formed hops.
func FuzzObservationReport(f *testing.F) {
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5,"predicted_ms":40}`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5,"predicted_ms":40,"hops":[{"ip":"10.0.1.2","rtt_ms":1},{"ip":"","rtt_ms":0}]}`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5}`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":42.5,"hops":[{"ip":"10.0.1.2","rtt_ms":1}]}`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":1,"predicted_ms":1e308}`))
	f.Add([]byte(`{"src":"10.0.1.1","dst":"10.0.2.1","rtt_ms":1,"predicted_ms":2,"hops":[{"ip":"x","rtt_ms":-1}]}`))
	f.Add([]byte("\n\n"))
	f.Add([]byte(strings.Repeat(`{"src":"9.9.9.9","dst":"8.8.8.8","rtt_ms":1,"predicted_ms":1}`+"\n", 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		obs, _ := ParseObservationReport(strings.NewReader(string(data)))
		if len(obs) > MaxUpstreamObservations {
			t.Fatalf("parser exceeded MaxUpstreamObservations: %d", len(obs))
		}
		for i, o := range obs {
			if !(o.RTTMS > 0) || o.RTTMS > MaxObservedRTTMS {
				t.Fatalf("observation %d has out-of-bounds rtt %v", i, o.RTTMS)
			}
			// predicted_ms is optional for structure-only observations:
			// zero is valid iff the line carries hops, and any nonzero
			// value must be a sane RTT.
			if o.PredictedMS == 0 {
				if len(o.Hops) == 0 {
					t.Fatalf("observation %d carries neither prediction nor hops", i)
				}
			} else if !(o.PredictedMS > 0) || o.PredictedMS > MaxObservedRTTMS {
				t.Fatalf("observation %d has out-of-bounds prediction %v", i, o.PredictedMS)
			}
			if len(o.Hops) > MaxObservationHops {
				t.Fatalf("observation %d has %d hops", i, len(o.Hops))
			}
			for j, h := range o.Hops {
				if h.RTTMS < 0 || h.RTTMS > MaxObservedRTTMS {
					t.Fatalf("observation %d hop %d rtt %v", i, j, h.RTTMS)
				}
			}
			if back, err := ParseIPv4(o.Dst.String()); err != nil || back != o.Dst {
				t.Fatalf("observation %d dst does not round-trip: %v", i, o.Dst)
			}
		}
	})
}

package feedback

import (
	"path/filepath"
	"testing"
	"time"

	"inano/internal/netsim"
)

func fakeNow(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestAggregatorMedianAcrossReporters(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	p := netsim.Prefix(100)
	g.Record(1, p, 10)
	g.Record(2, p, 20)
	g.Record(3, p, 30)
	snap := g.Snapshot(7)
	if snap.Day != 7 || len(snap.Prefixes) != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if ag := snap.Prefixes[0]; ag.Prefix != p || ag.ResidualMS != 20 || ag.Reporters != 3 {
		t.Fatalf("aggregate: %+v", ag)
	}
	// Even reporter count: mean of the middle two.
	g.Record(4, p, 40)
	if ag := g.Snapshot(7).Prefixes[0]; ag.ResidualMS != 25 {
		t.Fatalf("even-count median = %v, want 25", ag.ResidualMS)
	}
}

func TestAggregatorDedupsPerReporter(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	p := netsim.Prefix(100)
	// One source cluster reporting 100 times holds exactly one slot, and
	// the newest residual wins.
	for i := 0; i < 100; i++ {
		g.Record(1, p, float64(i))
	}
	g.Record(2, p, 7)
	snap := g.Snapshot(0)
	if ag := snap.Prefixes[0]; ag.Reporters != 2 {
		t.Fatalf("reporters = %d, want 2 (dedup per source cluster)", ag.Reporters)
	}
	// Median of {99, 7} = 53: the flood counts once.
	if ag := snap.Prefixes[0]; ag.ResidualMS != 53 {
		t.Fatalf("median = %v, want 53", ag.ResidualMS)
	}
}

// TestAggregatorSingleLiarBound: the per-prefix aggregate with one lying
// reporter added stays inside the honest reporters' residual range — the
// poisoning bound /v1/observations relies on.
func TestAggregatorSingleLiarBound(t *testing.T) {
	p := netsim.Prefix(42)
	honest := []float64{-5, 3, 12}
	for _, lie := range []float64{1e6, -1e6, MaxAdjustMS, -MaxAdjustMS} {
		g := NewAggregator(AggregatorConfig{})
		for i, r := range honest {
			g.Record(int32(i), p, r)
		}
		g.Record(99, p, lie)
		got := g.Snapshot(0).Prefixes[0].ResidualMS
		if got < -5 || got > 12 {
			t.Fatalf("lie %v moved aggregate to %v, outside honest range [-5, 12]", lie, got)
		}
	}
}

func TestAggregatorClampsResiduals(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	g.Record(1, 1, 1e9)
	g.Record(2, 2, -1e9)
	snap := g.Snapshot(0)
	for _, ag := range snap.Prefixes {
		if ag.ResidualMS > MaxAdjustMS || ag.ResidualMS < -MaxAdjustMS {
			t.Fatalf("unclamped aggregate: %+v", ag)
		}
	}
}

func TestAggregatorBounds(t *testing.T) {
	g := NewAggregator(AggregatorConfig{MaxPrefixes: 3, MaxReportersPerPrefix: 2})
	now, advance := fakeNow(time.Unix(1000, 0))
	g.nowFn = now

	// Prefix table bound: the stalest prefix is evicted.
	for i := 0; i < 5; i++ {
		g.Record(1, netsim.Prefix(i), 1)
		advance(time.Second)
	}
	st := g.Stats()
	if st.Prefixes != 3 || st.EvictedPrefixes != 2 {
		t.Fatalf("prefix bound: %+v", st)
	}
	if _, ok := g.prefixes[netsim.Prefix(0)]; ok {
		t.Fatal("stalest prefix survived eviction")
	}

	// Reporter bound: the stalest reporter slot is evicted.
	p := netsim.Prefix(9)
	g.Record(1, p, 1)
	advance(time.Second)
	g.Record(2, p, 2)
	advance(time.Second)
	g.Record(3, p, 3)
	pa := g.prefixes[p]
	if len(pa.reporters) != 2 {
		t.Fatalf("reporter slots = %d, want 2", len(pa.reporters))
	}
	if _, ok := pa.reporters[1]; ok {
		t.Fatal("stalest reporter survived eviction")
	}
}

func TestAggregatorStaleReportersExcluded(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	now, advance := fakeNow(time.Unix(1000, 0))
	g.nowFn = now
	p := netsim.Prefix(5)
	g.Record(1, p, 50)
	advance(2 * time.Hour) // reporter 1 goes stale
	g.Record(2, p, 10)
	snap := g.Snapshot(0)
	if len(snap.Prefixes) != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if ag := snap.Prefixes[0]; ag.Reporters != 1 || ag.ResidualMS != 10 {
		t.Fatalf("stale reporter still aggregated: %+v", ag)
	}
	// A prefix whose every reporter is stale drops out entirely.
	advance(2 * time.Hour)
	if snap := g.Snapshot(0); len(snap.Prefixes) != 0 {
		t.Fatalf("all-stale prefix still aggregated: %+v", snap)
	}
}

func TestSnapshotSaveLoadAndResiduals(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	g.Record(1, 10, 4)
	g.Record(2, 10, 6)
	g.Record(3, 10, 8)
	g.Record(1, 20, -3) // single reporter
	snap := g.Snapshot(3)

	path := filepath.Join(t.TempDir(), "obs.json")
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Day != 3 || len(back.Prefixes) != 2 {
		t.Fatalf("loaded: %+v", back)
	}
	// minReporters gates the fold.
	all := back.Residuals(1)
	if len(all) != 2 || all[10] != 6 || all[20] != -3 {
		t.Fatalf("residuals(1): %v", all)
	}
	strict := back.Residuals(3)
	if len(strict) != 1 || strict[10] != 6 {
		t.Fatalf("residuals(3): %v", strict)
	}
	if _, err := LoadSnapshot(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing snapshot succeeded")
	}
}

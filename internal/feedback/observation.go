package feedback

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"inano/internal/netsim"
)

// Upstream observation sharing (the paper's §5 loop closed in both
// directions): beyond patching its own atlas copy, a client ships its
// corrective observations to the central build, which folds the robustly
// aggregated residuals into the next day's delta — so every peer benefits
// from any peer's probes. This file defines the NDJSON wire format of
// inanod's POST /v1/observations endpoint; Uploader batches and ships it,
// Aggregator ingests it server-side.

// UpstreamObservation is one corrective observation a client shares with
// the build server: the pair it measured, the end-to-end RTT the
// destination host answered with, the RTT the client's atlas predicted
// when the probe was scheduled, and (optionally) the traceroute hops
// behind the measurement.
type UpstreamObservation struct {
	Src, Dst netsim.IP
	// RTTMS is the measured end-to-end round-trip time.
	RTTMS float64
	// PredictedMS is the client's prediction for the pair at probe time;
	// zero when no prediction existed. An observation must carry a
	// residual (positive PredictedMS), hops, or both — one with neither
	// tells the aggregate nothing and is rejected at parse.
	PredictedMS float64
	// Hops are the traceroute hops behind the measurement (optional,
	// bounded by MaxObservationHops; a zero IP is an unresponsive hop).
	Hops []Hop
}

// ResidualMS is the signed prediction residual the observation carries:
// measured minus predicted RTT.
func (o *UpstreamObservation) ResidualMS() float64 { return o.RTTMS - o.PredictedMS }

// Observation-report limits. Exported so the server, the uploader, and the
// fuzz target agree on the hardening contract.
const (
	// MaxObservationLineBytes caps one NDJSON observation line (hops
	// included).
	MaxObservationLineBytes = 16 << 10
	// MaxUpstreamObservations caps observations accepted from one report.
	MaxUpstreamObservations = 10_000
	// MaxObservationHops caps the hop list of one observation.
	MaxObservationHops = 64
)

// obsWire is the JSON shape of one observation line.
type obsWire struct {
	Src         string       `json:"src"`
	Dst         string       `json:"dst"`
	RTTMS       float64      `json:"rtt_ms"`
	PredictedMS float64      `json:"predicted_ms"`
	Hops        []obsHopWire `json:"hops,omitempty"`
}

type obsHopWire struct {
	IP    string  `json:"ip"` // "" = unresponsive ('*')
	RTTMS float64 `json:"rtt_ms"`
}

// EncodeObservations writes observations as NDJSON, one line each — the
// exact body POST /v1/observations accepts.
func EncodeObservations(w io.Writer, obs []UpstreamObservation) error {
	bw := bufio.NewWriter(w)
	for i := range obs {
		o := &obs[i]
		line := obsWire{
			Src:         o.Src.String(),
			Dst:         o.Dst.String(),
			RTTMS:       o.RTTMS,
			PredictedMS: o.PredictedMS,
		}
		for _, h := range o.Hops {
			hw := obsHopWire{RTTMS: h.RTTMS}
			if h.IP != 0 {
				hw.IP = h.IP.String()
			}
			line.Hops = append(line.Hops, hw)
		}
		b, err := json.Marshal(line)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseObservationReport decodes an NDJSON upstream-observation report,
// one {"src","dst","rtt_ms","predicted_ms","hops":[...]} object per line.
// Blank lines are skipped. Hardened for hostile input like ParseReport:
// per-line and per-report caps, strict IPv4 parsing, finite positive RTTs
// and predictions, bounded hop lists. On a malformed line it returns the
// observations parsed so far together with an error naming the line —
// callers may account the good prefix and reject the rest.
func ParseObservationReport(r io.Reader) ([]UpstreamObservation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024), MaxObservationLineBytes)
	var out []UpstreamObservation
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if len(out) >= MaxUpstreamObservations {
			return out, fmt.Errorf("line %d: report exceeds %d observations", lineNo, MaxUpstreamObservations)
		}
		var w obsWire
		if err := json.Unmarshal([]byte(line), &w); err != nil {
			return out, fmt.Errorf("line %d: bad observation: %v", lineNo, err)
		}
		src, err := ParseIPv4(w.Src)
		if err != nil {
			return out, fmt.Errorf("line %d: src: %v", lineNo, err)
		}
		dst, err := ParseIPv4(w.Dst)
		if err != nil {
			return out, fmt.Errorf("line %d: dst: %v", lineNo, err)
		}
		if !validRTT(w.RTTMS) {
			return out, fmt.Errorf("line %d: bad rtt_ms %v", lineNo, w.RTTMS)
		}
		// predicted_ms is optional when the line carries hops (a
		// structure-only observation from a pair the client could not
		// predict); a line with neither residual nor hops says nothing.
		if w.PredictedMS != 0 && !validRTT(w.PredictedMS) {
			return out, fmt.Errorf("line %d: bad predicted_ms %v", lineNo, w.PredictedMS)
		}
		if w.PredictedMS == 0 && len(w.Hops) == 0 {
			return out, fmt.Errorf("line %d: observation carries neither predicted_ms nor hops", lineNo)
		}
		if len(w.Hops) > MaxObservationHops {
			return out, fmt.Errorf("line %d: %d hops exceeds %d", lineNo, len(w.Hops), MaxObservationHops)
		}
		o := UpstreamObservation{Src: src, Dst: dst, RTTMS: w.RTTMS, PredictedMS: w.PredictedMS}
		for i, hw := range w.Hops {
			h := Hop{RTTMS: hw.RTTMS}
			if hw.IP != "" {
				if h.IP, err = ParseIPv4(hw.IP); err != nil {
					return out, fmt.Errorf("line %d: hop %d: %v", lineNo, i, err)
				}
			}
			if hw.RTTMS < 0 || math.IsNaN(hw.RTTMS) || hw.RTTMS > MaxObservedRTTMS {
				return out, fmt.Errorf("line %d: hop %d: bad rtt_ms %v", lineNo, i, hw.RTTMS)
			}
			o.Hops = append(o.Hops, h)
		}
		out = append(out, o)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("line %d: %w", lineNo+1, err)
	}
	return out, nil
}

// validRTT bounds a millisecond value: finite, positive, physically sane.
func validRTT(ms float64) bool {
	return ms > 0 && !math.IsInf(ms, 0) && ms <= MaxObservedRTTMS
}

// ObservationFromTraceroute extracts the upstream observation a corrective
// traceroute carries. ok is false when the traceroute has no measured
// end-to-end RTT (the destination never answered): without a measurement
// there is neither a residual nor a trustworthy tail to share. A
// traceroute scheduled *without* a prediction still ships — as a
// structure-only observation (zero PredictedMS, hops attached): a pair
// the local atlas cannot predict is exactly the coverage the structural
// fold exists to grow.
func ObservationFromTraceroute(tr *Traceroute) (UpstreamObservation, bool) {
	measured, ok := tr.MeasuredRTT()
	if !ok || !validRTT(measured) {
		return UpstreamObservation{}, false
	}
	o := UpstreamObservation{
		Src:   tr.Src.HostIP(),
		Dst:   tr.Dst.HostIP(),
		RTTMS: measured,
	}
	if tr.Predicted && validRTT(tr.PredictedRTTMS) {
		o.PredictedMS = tr.PredictedRTTMS
	}
	hops := tr.Hops
	if len(hops) > MaxObservationHops {
		// Keep the tail: the destination-side hops carry the residual's
		// provenance; the head is the reporter's own access path.
		hops = hops[len(hops)-MaxObservationHops:]
	}
	o.Hops = append([]Hop(nil), hops...)
	if o.PredictedMS == 0 && len(o.Hops) < 2 {
		// No residual and no infrastructure tail (the one hop is the
		// destination itself): nothing the aggregate could use.
		return UpstreamObservation{}, false
	}
	return o, true
}

package feedback

import (
	"sort"

	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Atlas merging: corrective (and routine client-side) traceroutes patch
// the FROM_SRC plane of a local atlas copy. The caller owns copy-on-write:
// Merge mutates the atlas it is given, which must be a private clone.

// AnyResponsive reports whether any traceroute in the batch has a hop that
// answered. A batch of all-unresponsive hops cannot contribute links or
// attachment entries, so callers skip the atlas clone entirely.
func AnyResponsive(trs []Traceroute) bool {
	for i := range trs {
		for _, h := range trs[i].Hops {
			if h.IP != 0 {
				return true
			}
		}
	}
	return false
}

// MaxAdjustMS caps the magnitude of a learned one-way residual
// correction: one absurd measurement (a routing event mid-probe, a
// half-broken path) must not poison a destination's predictions.
const MaxAdjustMS = 100.0

// Merge folds measured traceroutes into the FROM_SRC plane of a (§4.3.1).
// Interfaces unknown to the atlas are grouped into local clusters by their
// /24 (a coarse client-side approximation of the server's full
// clustering), allocated through local, which persists across merges and
// is mutated in place. Beyond links, a traceroute whose destination host
// answered teaches the atlas a per-destination residual latency
// correction (see learnResidual).
//
// The two change counts are reported separately because they differ in
// cost for the caller: structural changes (new links, plane tags,
// attachment entries) alter route computation and require an engine
// rebuild + Finalize; residual changes (AdjustMS revisions) are applied
// outside the prediction trees, so a residual-only merge can keep a warm
// tree cache.
func Merge(a *atlas.Atlas, local map[netsim.Prefix]int32, trs []Traceroute) (structural, residual int) {
	if a.AdjustMS == nil {
		a.AdjustMS = make(map[netsim.Prefix]float32)
	}
	fresh := make(map[uint64]bool)
	for i := range trs {
		structural += mergeOne(a, local, &trs[i], fresh)
		residual += learnResidual(a, &trs[i])
	}
	return structural, residual
}

// learnResidual compares a traceroute's measured end-to-end RTT (the
// destination host's own answer) with what the atlas predicted when the
// probe was scheduled, and steps the destination's AdjustMS correction
// halfway toward closing the signed residual. The residual is measured
// against the *corrected* prediction, so each probe of the same
// destination converges the served RTT geometrically onto the measured
// value; destinations this host never probed are untouched. Returns 1
// when a correction was newly learned or materially (>0.5 ms) revised.
func learnResidual(a *atlas.Atlas, tr *Traceroute) int {
	if !tr.Predicted {
		return 0
	}
	measured, ok := tr.MeasuredRTT()
	if !ok {
		return 0
	}
	resid := measured - tr.PredictedRTTMS
	old := a.AdjustMS[tr.Dst]
	next := float64(old) + 0.5*resid
	if next > MaxAdjustMS {
		next = MaxAdjustMS
	} else if next < -MaxAdjustMS {
		next = -MaxAdjustMS
	}
	a.AdjustMS[tr.Dst] = float32(next)
	if d := float32(next) - old; d > 0.5 || d < -0.5 {
		return 1
	}
	return 0
}

// Finalize restores the atlas link-set invariants after merges: links
// sorted by (From, To) and the link index invalidated.
func Finalize(a *atlas.Atlas) {
	sort.Slice(a.Links, func(i, j int) bool {
		x, y := a.Links[i], a.Links[j]
		if x.From != y.From {
			return x.From < y.From
		}
		return x.To < y.To
	})
	a.InvalidateIndex()
}

func mergeOne(a *atlas.Atlas, local map[netsim.Prefix]int32, tr *Traceroute, fresh map[uint64]bool) int {
	type hopRef struct {
		cl  cluster.ClusterID
		rtt float64
	}
	var hops []hopRef
	for _, h := range tr.Hops {
		if h.IP == 0 {
			hops = append(hops, hopRef{cl: -1})
			continue
		}
		cl, ok := clusterForIP(a, local, h.IP)
		if !ok {
			hops = append(hops, hopRef{cl: -1})
			continue
		}
		hops = append(hops, hopRef{cl: cl, rtt: h.RTTMS})
	}
	added := 0
	for i := 0; i+1 < len(hops); i++ {
		x, y := hops[i], hops[i+1]
		if x.cl < 0 || y.cl < 0 || x.cl == y.cl {
			continue
		}
		key := atlas.LinkKey(x.cl, y.cl)
		if fresh[key] {
			continue // appended earlier in this batch
		}
		if li := a.LinkAt(x.cl, y.cl); li >= 0 {
			// Known link: make sure the FROM_SRC plane sees it.
			if a.Links[li].Planes&atlas.PlaneFromSrc == 0 {
				a.Links[li].Planes |= atlas.PlaneFromSrc
				added++
			}
			continue
		}
		// One-way hop latency from the RTT delta of adjacent hops; clamped
		// because reverse-path asymmetry and noise can make it negative.
		lat := (y.rtt - x.rtt) / 2
		if lat < 0.1 {
			lat = 0.1
		}
		a.Links = append(a.Links, atlas.Link{
			From:      x.cl,
			To:        y.cl,
			LatencyMS: float32(lat),
			Planes:    atlas.PlaneFromSrc,
		})
		fresh[key] = true
		added++
	}
	// Record this host's attachment cluster if the atlas lacks it.
	if _, ok := a.PrefixCluster[tr.Src]; !ok {
		for _, h := range hops {
			if h.cl >= 0 {
				a.PrefixCluster[tr.Src] = h.cl
				added++
				break
			}
		}
	}
	return added
}

// clusterForIP maps an interface to a cluster: the attachment cluster of
// its /24 when the atlas knows it, otherwise a locally allocated cluster
// shared by all interfaces of that /24.
func clusterForIP(a *atlas.Atlas, local map[netsim.Prefix]int32, ip netsim.IP) (cluster.ClusterID, bool) {
	p := netsim.PrefixOf(ip)
	if cl, ok := a.PrefixCluster[p]; ok {
		return cl, true
	}
	if id, ok := local[p]; ok {
		return cluster.ClusterID(id), true
	}
	asn, ok := a.PrefixAS[p]
	if !ok {
		return 0, false // not even BGP knows this space; ignore
	}
	id := int32(a.NumClusters)
	a.NumClusters++
	a.ClusterAS = append(a.ClusterAS, asn)
	local[p] = id
	return cluster.ClusterID(id), true
}

package feedback

import (
	"math"
	"sort"
	"sync"
	"time"

	"inano/internal/netsim"
)

// ErrCap bounds one sample's relative error contribution: a missing
// prediction counts as 1.0, a wildly wrong one saturates at 2.0, so a few
// pathological observations cannot monopolize the corrective budget
// forever.
const ErrCap = 2.0

// TrackerConfig tunes error aggregation. The zero value uses defaults.
type TrackerConfig struct {
	// Alpha is the EWMA weight of the newest sample (default 0.25).
	Alpha float64
	// MaxEntries caps tracked destination clusters; beyond it the entry
	// with the oldest sample is evicted (default 4096).
	MaxEntries int
	// StaleAfter excludes destinations whose last sample is older than
	// this from corrective scheduling (default 15m): stale error says
	// nothing about the current atlas.
	StaleAfter time.Duration
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.25
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 4096
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 15 * time.Minute
	}
	return c
}

// Sample is the outcome of recording one observation.
type Sample struct {
	// Cluster is the destination attachment cluster the error was
	// attributed to (-1 when the destination is unknown to the atlas).
	Cluster int32
	// PredictedMS is the RTT the engine predicted (0 when unpredicted).
	PredictedMS float64
	// Err is the capped relative error contributed by this sample.
	Err float64
	// Predicted reports whether a prediction existed for the pair.
	Predicted bool
	// Tracked reports whether the sample entered the tracker.
	Tracked bool
}

// Target is one corrective-probe candidate: the destination cluster to
// re-measure and the representative (src, dst) prefix pair to traceroute.
type Target struct {
	Cluster  int32
	Src, Dst netsim.Prefix
	// Err is the destination's EWMA relative RTT error.
	Err float64
	// Samples is the number of observations behind Err.
	Samples int
}

// Stats summarizes the tracker for metrics and /debug/stats.
type Stats struct {
	// Entries is the number of destination clusters tracked.
	Entries int
	// TotalSamples counts observations recorded since creation.
	TotalSamples int
	// Evicted counts entries dropped to stay within MaxEntries.
	Evicted int
	// MeanErr is the unweighted mean EWMA error over entries.
	MeanErr float64
	// WorstErr is the largest EWMA error over entries.
	WorstErr float64
}

type entry struct {
	cluster    int32
	src, dst   netsim.Prefix
	ewmaErr    float64
	samples    int
	lastSample time.Time
	corrected  time.Time
}

// Tracker aggregates observed-vs-predicted RTT error per destination
// cluster. It is safe for concurrent use.
type Tracker struct {
	mu      sync.Mutex
	cfg     TrackerConfig
	ents    map[int32]*entry
	total   int
	dropped int
}

// NewTracker returns an empty tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), ents: make(map[int32]*entry)}
}

// RelErr computes the capped relative RTT error of one observation. A
// missing prediction costs 1.0 (the worst a present-but-wrong prediction
// of equal magnitude could score), so unpredictable destinations compete
// for the corrective budget too.
func RelErr(predictedMS, observedMS float64, predicted bool) float64 {
	if !predicted {
		return 1.0
	}
	denom := observedMS
	if denom < 1 {
		denom = 1
	}
	e := math.Abs(observedMS-predictedMS) / denom
	if e > ErrCap {
		e = ErrCap
	}
	return e
}

// Record folds one observation into the per-cluster EWMA. cluster < 0
// (destination unknown to the atlas) is accepted but untracked, so
// callers can still account the sample.
func (t *Tracker) Record(cluster int32, src, dst netsim.Prefix, predictedMS, observedMS float64, predicted bool, now time.Time) Sample {
	s := Sample{Cluster: cluster, PredictedMS: predictedMS, Predicted: predicted}
	s.Err = RelErr(predictedMS, observedMS, predicted)
	if cluster < 0 {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	e := t.ents[cluster]
	if e == nil {
		if len(t.ents) >= t.cfg.MaxEntries {
			t.evictOldestLocked()
		}
		e = &entry{cluster: cluster, ewmaErr: s.Err}
		t.ents[cluster] = e
	} else {
		e.ewmaErr = t.cfg.Alpha*s.Err + (1-t.cfg.Alpha)*e.ewmaErr
	}
	e.samples++
	e.lastSample = now
	e.src, e.dst = src, dst
	s.Tracked = true
	return s
}

// evictOldestLocked drops the entry with the oldest sample.
func (t *Tracker) evictOldestLocked() {
	var victim *entry
	for _, e := range t.ents {
		if victim == nil || e.lastSample.Before(victim.lastSample) {
			victim = e
		}
	}
	if victim != nil {
		delete(t.ents, victim.cluster)
		t.dropped++
	}
}

// Worst ranks the corrective-probe candidates: destinations with at least
// minSamples fresh observations, EWMA error of at least minErr, not probed
// within cooldown, and sampled within StaleAfter. The score weighs error
// by sample support, so one noisy observation does not outrank a
// consistently mispredicted popular destination. At most n targets are
// returned, worst first.
func (t *Tracker) Worst(n, minSamples int, minErr float64, cooldown time.Duration, now time.Time) []Target {
	if n <= 0 {
		return nil
	}
	if minSamples < 1 {
		minSamples = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	type scored struct {
		tg    Target
		score float64
	}
	var cands []scored
	for _, e := range t.ents {
		if e.samples < minSamples || e.ewmaErr < minErr {
			continue
		}
		if now.Sub(e.lastSample) > t.cfg.StaleAfter {
			continue
		}
		if !e.corrected.IsZero() && now.Sub(e.corrected) < cooldown {
			continue
		}
		cands = append(cands, scored{
			tg:    Target{Cluster: e.cluster, Src: e.src, Dst: e.dst, Err: e.ewmaErr, Samples: e.samples},
			score: e.ewmaErr * math.Log2(1+float64(e.samples)),
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].tg.Cluster < cands[j].tg.Cluster
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]Target, len(cands))
	for i, c := range cands {
		out[i] = c.tg
	}
	return out
}

// MarkCorrected records that a corrective probe was spent on the cluster:
// its sample count resets (it must re-earn eligibility with fresh
// observations against the patched atlas) and its error estimate halves
// rather than clearing, keeping a memory of chronic mispredictions.
func (t *Tracker) MarkCorrected(cluster int32, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.ents[cluster]; e != nil {
		e.corrected = now
		e.samples = 0
		e.ewmaErr /= 2
	}
}

// MarkProbed records that a corrective probe was *attempted* but failed:
// the cluster enters cooldown (a persistently unreachable destination
// must not monopolize every round's budget) but keeps its samples and
// error estimate — nothing was learned about its prediction.
func (t *Tracker) MarkProbed(cluster int32, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.ents[cluster]; e != nil {
		e.corrected = now
	}
}

// Len returns the number of tracked destination clusters.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ents)
}

// Stats summarizes the tracker.
func (t *Tracker) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Stats{Entries: len(t.ents), TotalSamples: t.total, Evicted: t.dropped}
	for _, e := range t.ents {
		st.MeanErr += e.ewmaErr
		if e.ewmaErr > st.WorstErr {
			st.WorstErr = e.ewmaErr
		}
	}
	if len(t.ents) > 0 {
		st.MeanErr /= float64(len(t.ents))
	}
	return st
}

package feedback

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// UploaderConfig tunes upstream observation shipping. The zero value (plus
// a URL) uses defaults.
type UploaderConfig struct {
	// URL is the build server's observation endpoint (e.g.
	// http://build:7353/v1/observations). Required.
	URL string
	// MaxBuffered caps observations held between flushes (default 1024).
	// When full, the oldest observation is dropped: fresher residuals
	// supersede stale ones by construction.
	MaxBuffered int
	// MaxBatch caps observations shipped per POST (default 256); a larger
	// buffer drains over several requests.
	MaxBatch int
	// MaxAttempts bounds tries per flush including the first (default 3).
	MaxAttempts int
	// Backoff is the initial retry delay, doubled per attempt (default
	// 500ms).
	Backoff time.Duration
	// Client is the HTTP client (default http.DefaultClient shape with a
	// 10s timeout).
	Client *http.Client

	// sleep is the test hook for backoff waits.
	sleep func(context.Context, time.Duration) error
}

func (c UploaderConfig) withDefaults() UploaderConfig {
	if c.MaxBuffered <= 0 {
		c.MaxBuffered = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBatch > MaxUpstreamObservations {
		c.MaxBatch = MaxUpstreamObservations
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// UploadStats accounts an uploader's lifetime activity.
type UploadStats struct {
	// Buffered is the current queue depth.
	Buffered int
	// Dropped counts observations discarded because the buffer was full.
	Dropped int
	// Shipped counts observations the server acknowledged.
	Shipped int
	// Rejected counts observations the server rate-limited or refused.
	Rejected int
	// Flushes and FlushErrors count flush calls and the ones that failed
	// after all retries.
	Flushes, FlushErrors int
}

// Uploader batches a client's corrective observations and ships them to
// the build server's POST /v1/observations endpoint as NDJSON, with
// bounded buffering and retry/backoff. Safe for concurrent use; a
// Corrector's Observe hook can feed it while another goroutine flushes.
type Uploader struct {
	cfg UploaderConfig

	mu    sync.Mutex
	queue []UpstreamObservation
	st    UploadStats
}

// NewUploader builds an uploader shipping to cfg.URL.
func NewUploader(cfg UploaderConfig) *Uploader {
	return &Uploader{cfg: cfg.withDefaults()}
}

// Add queues one observation; when the buffer is full the oldest queued
// observation is dropped to make room (fresher residuals supersede stale
// ones). It reports whether the observation was queued without a drop.
func (u *Uploader) Add(o UpstreamObservation) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	clean := true
	if len(u.queue) >= u.cfg.MaxBuffered {
		drop := len(u.queue) - u.cfg.MaxBuffered + 1
		u.queue = append(u.queue[:0], u.queue[drop:]...)
		u.st.Dropped += drop
		clean = false
	}
	u.queue = append(u.queue, o)
	return clean
}

// Observe queues the upstream observations a batch of corrective
// traceroutes carries — the shape of feedback.Config.Observe, so an
// uploader plugs directly into a Corrector:
//
//	cfg.Observe = uploader.Observe
func (u *Uploader) Observe(trs []Traceroute) {
	for i := range trs {
		if o, ok := ObservationFromTraceroute(&trs[i]); ok {
			u.Add(o)
		}
	}
}

// Len reports the current queue depth.
func (u *Uploader) Len() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.queue)
}

// Stats reports lifetime accounting.
func (u *Uploader) Stats() UploadStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	st := u.st
	st.Buffered = len(u.queue)
	return st
}

// obsResponse mirrors the server's /v1/observations summary line.
type obsResponse struct {
	Accepted    int    `json:"accepted"`
	RateLimited int    `json:"rate_limited"`
	Unknown     int    `json:"unknown"`
	Error       string `json:"error,omitempty"`
}

// Flush ships queued observations in MaxBatch-sized POSTs until the queue
// is empty or the server pushes back. The outcome of each batch decides
// its observations' fate:
//
//   - accepted / unknown-destination: done / dropped (counted Rejected) —
//     re-sending an unknown destination meets the same verdict;
//   - rate-limited (the server's "retry after backing off" contract):
//     re-queued in front, and the flush stops — the bucket needs time;
//   - transport failure after MaxAttempts: re-queued in front, error
//     returned;
//   - a final 4xx verdict (malformed, endpoint disabled): the batch is
//     dropped, not re-queued — re-sending identical bytes cannot succeed,
//     and a poison batch must not head-of-line-block fresh residuals.
//
// Re-queuing past the buffer cap drops from the *front* (the oldest,
// matching Add's policy). Returns the number of observations the server
// acknowledged.
func (u *Uploader) Flush(ctx context.Context) (int, error) {
	shipped := 0
	for {
		u.mu.Lock()
		if len(u.queue) == 0 {
			u.mu.Unlock()
			return shipped, nil
		}
		n := len(u.queue)
		if n > u.cfg.MaxBatch {
			n = u.cfg.MaxBatch
		}
		batch := append([]UpstreamObservation(nil), u.queue[:n]...)
		u.queue = append(u.queue[:0], u.queue[n:]...)
		u.st.Flushes++
		u.mu.Unlock()

		resp, err := u.post(ctx, batch)
		if err != nil {
			u.mu.Lock()
			u.st.FlushErrors++
			if errors.Is(err, errFinalVerdict) {
				// The server understood the batch and refused it for good.
				u.st.Rejected += len(batch)
			} else {
				u.requeueLocked(batch)
			}
			u.mu.Unlock()
			return shipped, err
		}
		shipped += resp.Accepted
		processed := resp.Accepted + resp.Unknown // the granted prefix
		if processed > len(batch) {
			processed = len(batch)
		}
		u.mu.Lock()
		u.st.Shipped += resp.Accepted
		u.st.Rejected += resp.Unknown
		if processed < len(batch) {
			// The tail was rate-limited: keep it for a later flush and
			// stop hammering the bucket.
			u.requeueLocked(batch[processed:])
			u.mu.Unlock()
			return shipped, nil
		}
		u.mu.Unlock()
	}
}

// requeueLocked puts a batch back at the front of the queue, dropping the
// oldest entries when the cap overflows. Caller holds u.mu.
func (u *Uploader) requeueLocked(batch []UpstreamObservation) {
	merged := append(append([]UpstreamObservation(nil), batch...), u.queue...)
	if over := len(merged) - u.cfg.MaxBuffered; over > 0 {
		merged = merged[over:]
		u.st.Dropped += over
	}
	u.queue = merged
}

// post ships one batch with retry/backoff.
func (u *Uploader) post(ctx context.Context, batch []UpstreamObservation) (obsResponse, error) {
	var body bytes.Buffer
	if err := EncodeObservations(&body, batch); err != nil {
		return obsResponse{}, err
	}
	backoff := u.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < u.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := u.cfg.sleep(ctx, backoff); err != nil {
				return obsResponse{}, err
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.cfg.URL, bytes.NewReader(body.Bytes()))
		if err != nil {
			return obsResponse{}, err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := u.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		out, err := decodeObsResponse(resp)
		if err != nil {
			lastErr = err
			// 4xx verdicts are final: the server understood the batch and
			// refused it; retrying the same bytes cannot succeed.
			if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
				return obsResponse{}, fmt.Errorf("%w: %w", errFinalVerdict, err)
			}
			continue
		}
		return out, nil
	}
	return obsResponse{}, fmt.Errorf("feedback: upload failed after %d attempts: %w", u.cfg.MaxAttempts, lastErr)
}

// errFinalVerdict marks a server rejection retrying cannot fix; Flush
// drops the batch instead of re-queuing it.
var errFinalVerdict = errors.New("final server verdict")

func decodeObsResponse(resp *http.Response) (obsResponse, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return obsResponse{}, err
	}
	var out obsResponse
	if jsonErr := json.Unmarshal(body, &out); jsonErr != nil && resp.StatusCode == http.StatusOK {
		return obsResponse{}, fmt.Errorf("feedback: bad upload response: %v", jsonErr)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return out, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// A fully rate-limited batch is still a server verdict on every
		// observation in it: accepted none.
		return out, nil
	default:
		msg := out.Error
		if msg == "" {
			msg = strings.TrimSpace(string(body))
		}
		return obsResponse{}, fmt.Errorf("feedback: upload rejected: status %d: %s", resp.StatusCode, msg)
	}
}

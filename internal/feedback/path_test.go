package feedback

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// mapResolver builds a ClusterizeHops resolver from an explicit
// /24 -> cluster table.
func mapResolver(m map[netsim.Prefix]int32) func(netsim.IP) (int32, bool) {
	return func(ip netsim.IP) (int32, bool) {
		c, ok := m[netsim.PrefixOf(ip)]
		return c, ok
	}
}

// hop builds a responsive hop in prefix p with the given RTT.
func hop(p netsim.Prefix, rtt float64) Hop { return Hop{IP: p.HostIP(), RTTMS: rtt} }

func TestClusterizeHopsBasic(t *testing.T) {
	dst := netsim.Prefix(900)
	res := mapResolver(map[netsim.Prefix]int32{10: 1, 11: 2, 12: 3})
	hops := []Hop{hop(10, 10), hop(11, 14), hop(12, 20), hop(dst, 24)}
	path, linkMS, err := ClusterizeHops(hops, dst, res)
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.ClusterID{1, 2, 3}
	if !reflect.DeepEqual(path, want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	// (14-10)/2 and (20-14)/2: one-way RTT-delta estimates; the
	// destination host hop contributes no step.
	if len(linkMS) != 2 || linkMS[0] != 2 || linkMS[1] != 3 {
		t.Fatalf("linkMS %v, want [2 3]", linkMS)
	}
}

func TestClusterizeHopsCollapsesRunsAndClampsNegatives(t *testing.T) {
	dst := netsim.Prefix(900)
	res := mapResolver(map[netsim.Prefix]int32{10: 1, 11: 1, 12: 2})
	// Two hops in cluster 1 collapse; the RTT delta into cluster 2 is
	// negative (reverse-path asymmetry) and must clamp, not go negative.
	hops := []Hop{hop(10, 10), hop(11, 30), hop(12, 8)}
	path, linkMS, err := ClusterizeHops(hops, dst, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []cluster.ClusterID{1, 2}) {
		t.Fatalf("path %v", path)
	}
	if len(linkMS) != 1 || linkMS[0] != 0.1 {
		t.Fatalf("linkMS %v, want clamped 0.1", linkMS)
	}
}

func TestClusterizeHopsRejectsUnmappable(t *testing.T) {
	dst := netsim.Prefix(900)
	res := mapResolver(map[netsim.Prefix]int32{10: 1, 12: 3})
	hops := []Hop{hop(10, 10), hop(11, 14), hop(12, 20)}
	if _, _, err := ClusterizeHops(hops, dst, res); !errors.Is(err, ErrUnmappableHop) {
		t.Fatalf("err %v, want ErrUnmappableHop", err)
	}
}

func TestClusterizeHopsRejectsLoop(t *testing.T) {
	dst := netsim.Prefix(900)
	res := mapResolver(map[netsim.Prefix]int32{10: 1, 11: 2, 12: 1})
	hops := []Hop{hop(10, 10), hop(11, 14), hop(12, 20)}
	if _, _, err := ClusterizeHops(hops, dst, res); !errors.Is(err, ErrLoopingPath) {
		t.Fatalf("err %v, want ErrLoopingPath", err)
	}
}

func TestClusterizeHopsGapKeepsDestinationTail(t *testing.T) {
	dst := netsim.Prefix(900)
	// Everything before the '*' — including an unmappable hop — is
	// ignored; only the contiguous destination-side tail counts.
	res := mapResolver(map[netsim.Prefix]int32{11: 2, 12: 3})
	hops := []Hop{hop(77, 5), {IP: 0}, hop(11, 14), hop(12, 20)}
	path, _, err := ClusterizeHops(hops, dst, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []cluster.ClusterID{2, 3}) {
		t.Fatalf("path %v, want tail after the gap", path)
	}
}

func TestClusterizeHopsShortTailIsNotAnError(t *testing.T) {
	dst := netsim.Prefix(900)
	res := mapResolver(map[netsim.Prefix]int32{11: 2})
	path, linkMS, err := ClusterizeHops([]Hop{hop(11, 14), hop(dst, 20)}, dst, res)
	if err != nil || path != nil || linkMS != nil {
		t.Fatalf("short tail: path=%v linkMS=%v err=%v, want all zero", path, linkMS, err)
	}
}

func TestClusterizeHopsCapsTailLength(t *testing.T) {
	dst := netsim.Prefix(900)
	m := make(map[netsim.Prefix]int32)
	var hops []Hop
	for i := 0; i < MaxPathTailClusters+5; i++ {
		p := netsim.Prefix(100 + i)
		m[p] = int32(i)
		hops = append(hops, hop(p, float64(i)))
	}
	path, linkMS, err := ClusterizeHops(hops, dst, mapResolver(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != MaxPathTailClusters || len(linkMS) != MaxPathTailClusters-1 {
		t.Fatalf("len(path)=%d len(linkMS)=%d, want cap %d", len(path), len(linkMS), MaxPathTailClusters)
	}
	if path[len(path)-1] != cluster.ClusterID(MaxPathTailClusters+4) {
		t.Fatalf("cap must keep the destination end, got tail end %d", path[len(path)-1])
	}
}

func pathOf(ids ...int32) []cluster.ClusterID {
	out := make([]cluster.ClusterID, len(ids))
	for i, id := range ids {
		out[i] = cluster.ClusterID(id)
	}
	return out
}

func onesMS(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestAgreedPathsSingleReporterNeverShips(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	dst := netsim.Prefix(500)
	// One reporter, re-reporting many times (and however many source
	// addresses it rotates through, the ingest resolves them to the same
	// source cluster): still one voice.
	for i := 0; i < 10; i++ {
		g.RecordPath(7, dst, pathOf(1, 2, 3), onesMS(2))
	}
	snap := g.Snapshot(0)
	if len(snap.Paths) != 1 {
		t.Fatalf("want the voted tail recorded for observability, got %+v", snap.Paths)
	}
	for _, min := range []int{0, 1, 2, 3} {
		if got := snap.AgreedPaths(min); len(got) != 0 {
			t.Fatalf("minReporters=%d shipped %d paths from a single reporter", min, len(got))
		}
	}
}

func TestAgreedPathsRotationBuysNoVotes(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	dst := netsim.Prefix(500)
	// Two honest reporters agree on the tail; a third party rotating
	// "identities" that all resolve to one source cluster replaces its own
	// slot each time and never becomes a second voice for its own tail.
	g.RecordPath(1, dst, pathOf(10, 11, 12), onesMS(2))
	g.RecordPath(2, dst, pathOf(20, 11, 12), onesMS(2))
	for i := 0; i < 5; i++ {
		g.RecordPath(9, dst, pathOf(30, 31, 12), onesMS(2))
	}
	snap := g.Snapshot(0)
	agreed := snap.AgreedPaths(2)
	if len(agreed) != 1 {
		t.Fatalf("agreed %v", agreed)
	}
	if !reflect.DeepEqual(agreed[0].Clusters, pathOf(11, 12)) {
		t.Fatalf("agreed tail %v, want the two honest reporters' [11 12]", agreed[0].Clusters)
	}
}

func TestAgreedPathsSuffixVotingAndTrim(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	dst := netsim.Prefix(500)
	// Three reporters share [5 6 7]; two of them also share the deeper
	// [4 5 6 7]. minReporters=3 trims to the triple-agreed suffix.
	g.RecordPath(1, dst, pathOf(1, 4, 5, 6, 7), onesMS(4))
	g.RecordPath(2, dst, pathOf(2, 4, 5, 6, 7), onesMS(4))
	g.RecordPath(3, dst, pathOf(3, 9, 5, 6, 7), onesMS(4))
	snap := g.Snapshot(0)
	if len(snap.Paths) != 1 {
		t.Fatalf("paths %+v", snap.Paths)
	}
	three := snap.AgreedPaths(3)
	if len(three) != 1 || !reflect.DeepEqual(three[0].Clusters, pathOf(5, 6, 7)) {
		t.Fatalf("minReporters=3: %+v", three)
	}
	two := snap.AgreedPaths(2)
	if len(two) != 1 || !reflect.DeepEqual(two[0].Clusters, pathOf(4, 5, 6, 7)) {
		t.Fatalf("minReporters=2: %+v", two)
	}
}

func TestAgreedPathsSingleLiarCannotShipFabrication(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	dst := netsim.Prefix(500)
	g.RecordPath(1, dst, pathOf(5, 6, 7), onesMS(2))
	g.RecordPath(2, dst, pathOf(5, 6, 7), onesMS(2))
	g.RecordPath(3, dst, pathOf(8, 6, 7), onesMS(2))
	// The liar invents a tail of real-looking clusters.
	g.RecordPath(99, dst, pathOf(40, 41, 42), onesMS(2))
	agreed := g.Snapshot(0).AgreedPaths(2)
	if len(agreed) != 1 {
		t.Fatalf("agreed %+v", agreed)
	}
	for _, c := range agreed[0].Clusters {
		if c >= 40 && c <= 42 {
			t.Fatalf("fabricated cluster %d shipped: %+v", c, agreed[0])
		}
	}
	if !reflect.DeepEqual(agreed[0].Clusters, pathOf(5, 6, 7)) {
		t.Fatalf("agreed tail %v, want the honest majority's", agreed[0].Clusters)
	}
}

func TestRecordPathRejectsMalformed(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	dst := netsim.Prefix(500)
	g.RecordPath(1, dst, pathOf(5), nil)             // too short
	g.RecordPath(1, dst, pathOf(5, 6), onesMS(5))    // mismatched linkMS
	g.RecordPath(1, dst, pathOf(5, 6, 5), onesMS(2)) // loop
	g.RecordPath(1, dst, pathOf(-1, 6), onesMS(1))   // negative cluster
	if st := g.Stats(); st.Paths != 0 {
		t.Fatalf("malformed paths stored: %+v", st)
	}
}

func TestPathStalenessExcludesOldReporters(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	now := time.Unix(1000000, 0)
	g.nowFn = func() time.Time { return now }
	dst := netsim.Prefix(500)
	g.RecordPath(1, dst, pathOf(5, 6, 7), onesMS(2))
	g.RecordPath(2, dst, pathOf(5, 6, 7), onesMS(2))
	if agreed := g.Snapshot(0).AgreedPaths(2); len(agreed) != 1 {
		t.Fatalf("fresh: %+v", agreed)
	}
	now = now.Add(2 * time.Hour)
	g.RecordPath(2, dst, pathOf(5, 6, 7), onesMS(2))
	if agreed := g.Snapshot(0).AgreedPaths(2); len(agreed) != 0 {
		t.Fatalf("reporter 1 went stale, agreement must drop below 2: %+v", agreed)
	}
	// Scalar re-reports must not keep an obsolete path looking fresh:
	// reporter 1 keeps reporting residuals, but its hop path (recorded
	// two hours ago) stays stale.
	g.Record(1, dst, 5)
	snap := g.Snapshot(0)
	if agreed := snap.AgreedPaths(2); len(agreed) != 0 {
		t.Fatalf("a residual-only re-report refreshed a stale path: %+v", agreed)
	}
	if len(snap.Prefixes) != 1 || snap.Prefixes[0].Reporters != 1 {
		t.Fatalf("the fresh residual itself must still aggregate: %+v", snap.Prefixes)
	}
}

func TestAgreedPathsSkipsMalformedSnapshotEntries(t *testing.T) {
	// Snapshots come off disk; truncated or hand-edited entries must be
	// skipped, not panic inano-build.
	snap := ObservationSnapshot{Paths: []AggregatedPath{
		{Prefix: 1, Clusters: pathOf(1, 2, 3), LinkMS: []float64{1, 2}, LinkReporters: []int{3}},
		{Prefix: 2, Clusters: pathOf(1), LinkMS: nil, LinkReporters: nil},
		{Prefix: 3, Clusters: pathOf(1, 2), LinkMS: []float64{1, 2, 3}, LinkReporters: []int{3, 3, 3}},
		{Prefix: 4, Clusters: pathOf(8, 9), LinkMS: []float64{1}, LinkReporters: []int{3}}, // well-formed
	}}
	agreed := snap.AgreedPaths(2)
	if len(agreed) != 1 || agreed[0].Dst != 4 {
		t.Fatalf("agreed %+v, want only the well-formed entry", agreed)
	}
}

func TestSnapshotPathsSurviveDiskRoundTrip(t *testing.T) {
	g := NewAggregator(AggregatorConfig{})
	dst := netsim.Prefix(500)
	g.RecordPath(1, dst, pathOf(5, 6, 7), []float64{1.5, 2.5})
	g.RecordPath(2, dst, pathOf(5, 6, 7), []float64{2.5, 3.5})
	snap := g.Snapshot(3)
	path := filepath.Join(t.TempDir(), "obs.json")
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Paths, snap.Paths) {
		t.Fatalf("paths did not survive the round trip:\n%+v\n%+v", got.Paths, snap.Paths)
	}
	agreed := got.AgreedPaths(2)
	if len(agreed) != 1 || !reflect.DeepEqual(agreed[0].Clusters, pathOf(5, 6, 7)) {
		t.Fatalf("agreed from disk: %+v", agreed)
	}
	if agreed[0].LinkMS[0] != 2 || agreed[0].LinkMS[1] != 3 {
		t.Fatalf("medianized linkMS: %+v", agreed[0].LinkMS)
	}
	_ = os.Remove(path)
}

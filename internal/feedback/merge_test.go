package feedback

import (
	"testing"

	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/netsim"
)

// testAtlas hand-builds a 4-cluster atlas:
//
//	cluster 0 (AS 1) -> cluster 1 (AS 1) -> cluster 2 (AS 2), cluster 3 (AS 2) unlinked
//
// with prefixes p0..p3 attached to the matching clusters, all TO_DST.
func testAtlas() *atlas.Atlas {
	a := atlas.New()
	a.NumClusters = 4
	a.ClusterAS = []netsim.ASN{1, 1, 2, 2}
	a.Links = []atlas.Link{
		{From: 0, To: 1, LatencyMS: 5, Planes: atlas.PlaneToDst},
		{From: 1, To: 2, LatencyMS: 10, Planes: atlas.PlaneToDst},
	}
	for i := 0; i < 4; i++ {
		p := netsim.Prefix(100 + i)
		a.PrefixCluster[p] = cluster.ClusterID(i)
		a.PrefixAS[p] = netsim.ASN(1 + i/2)
	}
	return a
}

func pfx(i int) netsim.Prefix { return netsim.Prefix(100 + i) }
func ip(i int) netsim.IP      { return pfx(i).HostIP() }

func TestMergeTagsAndAddsLinks(t *testing.T) {
	a := testAtlas()
	local := map[netsim.Prefix]int32{}
	src := netsim.Prefix(999) // unknown prefix, but BGP knows its AS
	a.PrefixAS[src] = 1
	trs := []Traceroute{{
		Src: src,
		Dst: pfx(3),
		Hops: []Hop{
			{IP: ip(0), RTTMS: 2},
			{IP: ip(1), RTTMS: 12},
			{IP: ip(3), RTTMS: 40}, // new link 1->3
		},
	}}
	added, residual := Merge(a, local, trs)
	// Expected: plane tag on 0->1, new link 1->3, attachment for src — all
	// structural; no destination-host answer, so no residual.
	if added != 3 || residual != 0 {
		t.Fatalf("added = %d, residual = %d, want 3, 0", added, residual)
	}
	if li := a.LinkAt(0, 1); li < 0 || a.Links[li].Planes&atlas.PlaneFromSrc == 0 {
		t.Fatal("0->1 not tagged FROM_SRC")
	}
	Finalize(a)
	li := a.LinkAt(1, 3)
	if li < 0 {
		t.Fatal("1->3 not added")
	}
	if l := a.Links[li]; l.Planes != atlas.PlaneFromSrc || l.LatencyMS != 14 {
		t.Fatalf("1->3 link wrong: %+v (want FROM_SRC, latency (40-12)/2=14)", l)
	}
	if cl, ok := a.PrefixCluster[src]; !ok || cl != 0 {
		t.Fatalf("src attachment = %v, %v", cl, ok)
	}
	// Re-merging the same traceroutes is a no-op: everything is patched.
	if s2, r2 := Merge(a, local, trs); s2 != 0 || r2 != 0 {
		t.Fatalf("second merge added %d structural, %d residual, want 0", s2, r2)
	}
}

func TestMergeDuplicateHops(t *testing.T) {
	a := testAtlas()
	// The same interface answering consecutive TTLs (a real traceroute
	// artifact) and two interfaces of one cluster must not create
	// self-links.
	trs := []Traceroute{{
		Src: pfx(0),
		Dst: pfx(2),
		Hops: []Hop{
			{IP: ip(1), RTTMS: 10},
			{IP: ip(1), RTTMS: 11}, // duplicate hop
			{IP: ip(1) + 1, RTTMS: 12},
			{IP: ip(2), RTTMS: 30},
		},
	}}
	Merge(a, map[netsim.Prefix]int32{}, trs)
	for _, l := range a.Links {
		if l.From == l.To {
			t.Fatalf("self-link created: %+v", l)
		}
	}
}

func TestMergeDecreasingRTTClamped(t *testing.T) {
	a := testAtlas()
	// RTT decreasing along the path (asymmetric reverse paths, noise):
	// the latency delta is negative and must clamp to the 0.1ms floor,
	// never a negative link.
	trs := []Traceroute{{
		Src: pfx(0),
		Dst: pfx(3),
		Hops: []Hop{
			{IP: ip(2), RTTMS: 50},
			{IP: ip(3), RTTMS: 20}, // "earlier" hop measured slower
		},
	}}
	if structural, _ := Merge(a, map[netsim.Prefix]int32{}, trs); structural == 0 {
		t.Fatal("nothing merged")
	}
	Finalize(a)
	li := a.LinkAt(2, 3)
	if li < 0 {
		t.Fatal("2->3 not added")
	}
	if lat := a.Links[li].LatencyMS; lat != 0.1 {
		t.Fatalf("latency = %v, want clamp 0.1", lat)
	}
}

func TestMergeUnresponsiveHopsBreakAdjacency(t *testing.T) {
	a := testAtlas()
	trs := []Traceroute{{
		Src: pfx(0),
		Dst: pfx(3),
		Hops: []Hop{
			{IP: ip(0), RTTMS: 2},
			{},                     // '*' hop
			{IP: ip(3), RTTMS: 40}, // must NOT produce a 0->3 link
		},
	}}
	Merge(a, map[netsim.Prefix]int32{}, trs)
	if li := a.LinkAt(0, 3); li >= 0 {
		t.Fatal("link bridged across an unresponsive hop")
	}
}

func TestMergeLocalClusterAllocation(t *testing.T) {
	a := testAtlas()
	local := map[netsim.Prefix]int32{}
	unknown := netsim.Prefix(500)
	a.PrefixAS[unknown] = 2
	trs := []Traceroute{{
		Src: pfx(0),
		Dst: pfx(2),
		Hops: []Hop{
			{IP: ip(1), RTTMS: 10},
			{IP: unknown.HostIP(), RTTMS: 20},
			{IP: unknown.HostIP() + 1, RTTMS: 21}, // same /24 -> same local cluster
			{IP: ip(2), RTTMS: 30},
		},
	}}
	Merge(a, local, trs)
	if a.NumClusters != 5 {
		t.Fatalf("NumClusters = %d, want 5 (one local cluster for the /24)", a.NumClusters)
	}
	if id, ok := local[unknown]; !ok || id != 4 {
		t.Fatalf("local cluster allocation: %v, %v", id, ok)
	}
	if a.ClusterAS[4] != 2 {
		t.Fatalf("local cluster AS = %d, want 2", a.ClusterAS[4])
	}
	// An interface in address space BGP has never seen is ignored.
	a2 := testAtlas()
	trs[0].Hops[1].IP = netsim.Prefix(900).HostIP()
	trs[0].Hops[2].IP = 0
	before := a2.NumClusters
	Merge(a2, map[netsim.Prefix]int32{}, trs)
	if a2.NumClusters != before {
		t.Fatal("cluster allocated for unrouted address space")
	}
}

func TestLearnResidualConvergesAndCaps(t *testing.T) {
	a := testAtlas()
	tr := Traceroute{
		Src:            pfx(0),
		Dst:            pfx(2),
		PredictedRTTMS: 100,
		Predicted:      true,
	}
	// Destination host answered with the true RTT 160: the correction
	// steps halfway (+30), then converges geometrically.
	tr.Hops = []Hop{{IP: ip(1), RTTMS: 10}, {IP: ip(2), RTTMS: 160}}
	if _, got := Merge(a, map[netsim.Prefix]int32{}, []Traceroute{tr}); got == 0 {
		t.Fatal("residual not counted as a change")
	}
	if adj := a.AdjustMS[pfx(2)]; adj != 30 {
		t.Fatalf("adjust after first probe = %v, want 30", adj)
	}
	// Next probe is scored against the corrected prediction (130).
	tr.PredictedRTTMS = 130
	Merge(a, map[netsim.Prefix]int32{}, []Traceroute{tr})
	if adj := a.AdjustMS[pfx(2)]; adj != 45 {
		t.Fatalf("adjust after second probe = %v, want 45", adj)
	}

	// One absurd measurement cannot push the correction past the cap.
	tr.PredictedRTTMS = 10
	tr.Hops[1].RTTMS = 10_000
	Merge(a, map[netsim.Prefix]int32{}, []Traceroute{tr})
	if adj := a.AdjustMS[pfx(2)]; adj != MaxAdjustMS {
		t.Fatalf("adjust = %v, want cap %v", adj, MaxAdjustMS)
	}

	// Unreached or unpredicted traceroutes learn nothing.
	b := testAtlas()
	unreached := tr
	unreached.Hops = []Hop{{IP: ip(1), RTTMS: 10}}
	Merge(b, map[netsim.Prefix]int32{}, []Traceroute{unreached})
	if len(b.AdjustMS) != 0 {
		t.Fatal("unreached traceroute learned a residual")
	}
	unpredicted := tr
	unpredicted.Predicted = false
	Merge(b, map[netsim.Prefix]int32{}, []Traceroute{unpredicted})
	if len(b.AdjustMS) != 0 {
		t.Fatal("unpredicted traceroute learned a residual")
	}
}

func TestMeasuredRTT(t *testing.T) {
	tr := Traceroute{Src: pfx(0), Dst: pfx(2)}
	if _, ok := tr.MeasuredRTT(); ok {
		t.Fatal("empty traceroute measured an RTT")
	}
	tr.Hops = []Hop{{IP: ip(1), RTTMS: 10}}
	if _, ok := tr.MeasuredRTT(); ok {
		t.Fatal("unreached traceroute measured an RTT")
	}
	tr.Hops = append(tr.Hops, Hop{IP: ip(2), RTTMS: 42})
	if rtt, ok := tr.MeasuredRTT(); !ok || rtt != 42 {
		t.Fatalf("MeasuredRTT = %v, %v", rtt, ok)
	}
}

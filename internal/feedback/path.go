package feedback

import (
	"errors"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Hop-path clusterization: the structural half of upstream observation
// sharing. An uploaded observation's hop list is turned into a cluster
// sequence against the serving atlas at ingest — the only moment a
// trusted mapping exists — and the aggregator then votes cluster
// sequences, not raw IPs, across reporters. Only the destination-side
// contiguous tail of a traceroute is kept: that is the segment
// independent reporters can corroborate (their paths converge near the
// destination), and the segment the build can fold into everyone's atlas
// (atlas.FoldPaths).

// MaxPathTailClusters caps the clusterized tail kept from one hop list.
// Destination-side structure is the valuable part (the source side is the
// reporter's private access path, which no other reporter can
// corroborate), so longer paths keep their last clusters.
const MaxPathTailClusters = 16

// Hop-list validation errors returned by ClusterizeHops. The server
// counts them; the observation's scalar residual is still usable.
var (
	// ErrUnmappableHop rejects hop lists whose destination-side tail
	// contains a responsive hop the atlas cannot place in any cluster:
	// an unplaceable hop cannot be voted on, and trusting the rest of
	// the list would let a reporter smuggle structure past agreement.
	ErrUnmappableHop = errors.New("feedback: unmappable hop in destination-side tail")
	// ErrLoopingPath rejects hop lists whose clusterized tail visits a
	// cluster twice: measurement artifacts (or fabrication) that must
	// not become atlas structure.
	ErrLoopingPath = errors.New("feedback: looping hop list")
)

// ClusterizeHops maps a traceroute hop list onto the serving atlas's
// cluster space and returns the destination-side contiguous tail as a
// cluster sequence plus per-link one-way latency estimates
// (len(linkMS) == len(path)-1), derived from adjacent hop RTT deltas the
// way the client-side merge derives them.
//
// Rules, in order:
//
//   - Hops inside the destination prefix are the destination host itself,
//     not infrastructure; they are dropped (the tail then ends at the
//     destination's last infrastructure cluster — its attachment).
//   - Unresponsive hops ('*', zero IP) break contiguity: only the tail
//     after the last gap is considered, everything before it is ignored.
//   - A responsive tail hop the resolver cannot place rejects the whole
//     list (ErrUnmappableHop); a tail revisiting a cluster rejects it too
//     (ErrLoopingPath).
//   - Consecutive hops in one cluster collapse into one step; the tail is
//     capped at MaxPathTailClusters, keeping the destination end.
//
// A valid but too-short tail (fewer than two clusters) returns a nil path
// and no error: nothing structural to share, nothing to reject. resolve
// maps a hop interface to its cluster — use inano.Snapshot.HopCluster
// (the interface-prefix table with the attachment table as fallback);
// the attachment table alone cannot place infrastructure /24s and would
// reject most real hop lists.
func ClusterizeHops(hops []Hop, dst netsim.Prefix, resolve func(netsim.IP) (int32, bool)) ([]cluster.ClusterID, []float64, error) {
	// Keep the contiguous run after the last unresponsive hop.
	tail := hops
	for i := len(hops) - 1; i >= 0; i-- {
		if hops[i].IP == 0 {
			tail = hops[i+1:]
			break
		}
	}
	type step struct {
		cl       cluster.ClusterID
		entryRTT float64
		exitRTT  float64
	}
	var steps []step
	for _, h := range tail {
		if netsim.PrefixOf(h.IP) == dst {
			continue // destination host hop, not infrastructure
		}
		cl, ok := resolve(h.IP)
		if !ok {
			return nil, nil, ErrUnmappableHop
		}
		c := cluster.ClusterID(cl)
		if n := len(steps); n > 0 && steps[n-1].cl == c {
			steps[n-1].exitRTT = h.RTTMS
			continue
		}
		steps = append(steps, step{cl: c, entryRTT: h.RTTMS, exitRTT: h.RTTMS})
	}
	seen := make(map[cluster.ClusterID]bool, len(steps))
	for _, s := range steps {
		if seen[s.cl] {
			return nil, nil, ErrLoopingPath
		}
		seen[s.cl] = true
	}
	if len(steps) > MaxPathTailClusters {
		steps = steps[len(steps)-MaxPathTailClusters:]
	}
	if len(steps) < 2 {
		return nil, nil, nil
	}
	path := make([]cluster.ClusterID, len(steps))
	linkMS := make([]float64, len(steps)-1)
	for i, s := range steps {
		path[i] = s.cl
		if i > 0 {
			// One-way hop latency from the RTT delta of adjacent hops;
			// clamped because reverse-path asymmetry and noise can make
			// it negative.
			lat := (s.entryRTT - steps[i-1].exitRTT) / 2
			if lat < 0.1 {
				lat = 0.1
			}
			linkMS[i-1] = lat
		}
	}
	return path, linkMS, nil
}

package feedback

import (
	"testing"
	"time"

	"inano/internal/netsim"
)

func TestRelErr(t *testing.T) {
	cases := []struct {
		pred, obs float64
		found     bool
		want      float64
	}{
		{100, 100, true, 0},
		{80, 100, true, 0.2},
		{120, 100, true, 0.2},
		{0, 100, false, 1.0},   // unpredicted costs 1.0
		{1000, 100, true, 2.0}, // capped at ErrCap
		{50, 0.5, true, 2.0},   // denominator floored at 1ms, still capped
		{0.6, 0.5, true, 0.1},  // sub-millisecond observations don't explode
	}
	for _, c := range cases {
		if got := RelErr(c.pred, c.obs, c.found); got < c.want-1e-9 || got > c.want+1e-9 {
			t.Errorf("RelErr(%v, %v, %v) = %v, want %v", c.pred, c.obs, c.found, got, c.want)
		}
	}
}

func TestTrackerEWMAAndWorstRanking(t *testing.T) {
	tr := NewTracker(TrackerConfig{Alpha: 0.5})
	now := time.Now()
	src, d1, d2, d3 := netsim.Prefix(1), netsim.Prefix(10), netsim.Prefix(20), netsim.Prefix(30)

	// Cluster 1: consistently terrible (unpredicted).
	for i := 0; i < 4; i++ {
		s := tr.Record(1, src, d1, 0, 100, false, now)
		if !s.Tracked || s.Err != 1.0 {
			t.Fatalf("sample %d: %+v", i, s)
		}
	}
	// Cluster 2: mildly wrong.
	for i := 0; i < 4; i++ {
		tr.Record(2, src, d2, 80, 100, true, now)
	}
	// Cluster 3: essentially right.
	for i := 0; i < 4; i++ {
		tr.Record(3, src, d3, 99, 100, true, now)
	}

	worst := tr.Worst(10, 1, 0.05, 0, now)
	if len(worst) != 2 {
		t.Fatalf("Worst returned %d targets, want 2 (cluster 3 is under minErr): %+v", len(worst), worst)
	}
	if worst[0].Cluster != 1 || worst[1].Cluster != 2 {
		t.Fatalf("ranking wrong: %+v", worst)
	}
	if worst[0].Src != src || worst[0].Dst != d1 {
		t.Fatalf("target pair wrong: %+v", worst[0])
	}
	if worst[0].Samples != 4 {
		t.Fatalf("samples = %d, want 4", worst[0].Samples)
	}

	// minSamples gates eligibility.
	if got := tr.Worst(10, 5, 0.05, 0, now); len(got) != 0 {
		t.Fatalf("minSamples=5 should exclude all: %+v", got)
	}
	// n caps the schedule.
	if got := tr.Worst(1, 1, 0.05, 0, now); len(got) != 1 || got[0].Cluster != 1 {
		t.Fatalf("n=1 should return only the worst: %+v", got)
	}
}

func TestTrackerEWMAConverges(t *testing.T) {
	tr := NewTracker(TrackerConfig{Alpha: 0.5})
	now := time.Now()
	// Start terrible, then deliver perfect predictions: the EWMA must decay.
	tr.Record(7, 1, 2, 0, 100, false, now)
	for i := 0; i < 10; i++ {
		tr.Record(7, 1, 2, 100, 100, true, now)
	}
	st := tr.Stats()
	if st.Entries != 1 || st.TotalSamples != 11 {
		t.Fatalf("stats: %+v", st)
	}
	if st.WorstErr > 0.01 {
		t.Fatalf("EWMA did not converge down: %+v", st)
	}
}

func TestTrackerStaleness(t *testing.T) {
	tr := NewTracker(TrackerConfig{StaleAfter: time.Minute})
	base := time.Now()
	tr.Record(1, 1, 2, 0, 100, false, base)
	if got := tr.Worst(10, 1, 0.05, 0, base.Add(30*time.Second)); len(got) != 1 {
		t.Fatalf("fresh entry not scheduled: %+v", got)
	}
	if got := tr.Worst(10, 1, 0.05, 0, base.Add(2*time.Minute)); len(got) != 0 {
		t.Fatalf("stale entry scheduled: %+v", got)
	}
}

func TestTrackerCooldownAndMarkCorrected(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	now := time.Now()
	for i := 0; i < 3; i++ {
		tr.Record(1, 1, 2, 0, 100, false, now)
	}
	tr.MarkCorrected(1, now)
	// Within cooldown: ineligible even with fresh samples.
	tr.Record(1, 1, 2, 0, 100, false, now)
	if got := tr.Worst(10, 1, 0.05, 5*time.Minute, now.Add(time.Minute)); len(got) != 0 {
		t.Fatalf("corrected entry rescheduled within cooldown: %+v", got)
	}
	// After cooldown with fresh samples: eligible again.
	tr.Record(1, 1, 2, 0, 100, false, now.Add(6*time.Minute))
	if got := tr.Worst(10, 1, 0.05, 5*time.Minute, now.Add(6*time.Minute)); len(got) != 1 {
		t.Fatalf("corrected entry not rescheduled after cooldown: %+v", got)
	}
	// MarkCorrected resets the sample count (entry must re-earn eligibility).
	tr.MarkCorrected(1, now.Add(6*time.Minute))
	if got := tr.Worst(10, 2, 0.05, 0, now.Add(6*time.Minute)); len(got) != 0 {
		t.Fatalf("sample count not reset by MarkCorrected: %+v", got)
	}
}

func TestTrackerEviction(t *testing.T) {
	tr := NewTracker(TrackerConfig{MaxEntries: 2})
	base := time.Now()
	tr.Record(1, 1, 10, 0, 100, false, base)
	tr.Record(2, 1, 20, 0, 100, false, base.Add(time.Second))
	tr.Record(3, 1, 30, 0, 100, false, base.Add(2*time.Second))
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	// The oldest (cluster 1) was evicted; 2 and 3 remain.
	got := tr.Worst(10, 1, 0, 0, base.Add(2*time.Second))
	for _, tg := range got {
		if tg.Cluster == 1 {
			t.Fatalf("evicted cluster still scheduled: %+v", got)
		}
	}
}

func TestTrackerUntrackedCluster(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	s := tr.Record(-1, 1, 2, 0, 100, false, time.Now())
	if s.Tracked {
		t.Fatal("cluster -1 must not be tracked")
	}
	if s.Err != 1.0 {
		t.Fatalf("untracked sample still scores: %+v", s)
	}
	if tr.Len() != 0 {
		t.Fatal("untracked sample entered the table")
	}
}

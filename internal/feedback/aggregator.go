package feedback

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Aggregator collects upstream observations on the build server and
// reduces them to one robust residual per destination prefix, ready to
// fold into the next atlas delta (atlas.BuildDeltaWithObservations).
//
// Abuse bounds, designed in from day one (the centralized component of an
// otherwise peer-to-peer system is the obvious poisoning target):
//
//   - Reporter identity is the *source attachment cluster* derived from
//     the serving atlas, not anything the reporter claims: rotating source
//     addresses inside one network buys no extra votes.
//   - Observations dedup per (source-cluster, dst-prefix): a reporter's
//     newest residual for a destination replaces its older one instead of
//     stacking.
//   - The per-prefix aggregate is the median over reporters, so a single
//     lying reporter cannot move a prefix's aggregate outside the range of
//     the honest reporters' residuals (for >= 2 honest reporters).
//   - Residual magnitude is capped at MaxAdjustMS per observation, and
//     both the prefix table and the per-prefix reporter sets are bounded
//     with stalest-eviction.
type Aggregator struct {
	mu  sync.Mutex
	cfg AggregatorConfig

	prefixes map[netsim.Prefix]*prefixAgg
	recorded int
	evicted  int
	nowFn    func() time.Time // test hook
}

// AggregatorConfig bounds the aggregation tables. The zero value uses
// defaults.
type AggregatorConfig struct {
	// MaxPrefixes caps tracked destination prefixes (default 8192); beyond
	// it the prefix with the stalest newest-report is evicted.
	MaxPrefixes int
	// MaxReportersPerPrefix caps reporter slots per prefix (default 32);
	// beyond it the stalest reporter is evicted.
	MaxReportersPerPrefix int
	// StaleAfter drops a reporter's residual from aggregation when its
	// newest report is older than this (default 24h: an aggregate folded
	// into tomorrow's delta should reflect today's measurements).
	StaleAfter time.Duration
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.MaxPrefixes <= 0 {
		c.MaxPrefixes = 8192
	}
	if c.MaxReportersPerPrefix <= 0 {
		c.MaxReportersPerPrefix = 32
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 24 * time.Hour
	}
	return c
}

// prefixAgg is one destination prefix's reporter table.
type prefixAgg struct {
	reporters map[int32]*reporterObs // keyed by source attachment cluster
	newest    time.Time
}

// reporterObs is one reporter's slot for a prefix: its newest scalar
// residual and/or its newest clusterized hop path. One slot per reporter
// cluster — a reporter re-reporting (or rotating source addresses inside
// its network) replaces its own slot instead of stacking votes. The two
// contributions age independently (residAt/pathAt): a stream of scalar
// re-reports must not keep an obsolete hop path looking fresh. at is the
// slot's newest activity, the eviction key.
type reporterObs struct {
	residualMS  float64
	hasResidual bool
	residAt     time.Time
	path        []cluster.ClusterID
	linkMS      []float64
	pathAt      time.Time
	at          time.Time
}

// NewAggregator returns an empty aggregator.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	return &Aggregator{
		cfg:      cfg.withDefaults(),
		prefixes: make(map[netsim.Prefix]*prefixAgg),
		nowFn:    time.Now,
	}
}

// Record folds one validated observation into the aggregate: the reporter
// at srcCluster observed residualMS (measured - predicted) toward dst.
// The residual is clamped to ±MaxAdjustMS. The caller (the /v1/observations
// handler) is responsible for identity: srcCluster must come from the
// serving atlas's view of the reporting peer, never from the report body.
func (g *Aggregator) Record(srcCluster int32, dst netsim.Prefix, residualMS float64) {
	if residualMS > MaxAdjustMS {
		residualMS = MaxAdjustMS
	} else if residualMS < -MaxAdjustMS {
		residualMS = -MaxAdjustMS
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ro := g.reporterSlotLocked(srcCluster, dst)
	ro.residualMS = residualMS
	ro.hasResidual = true
	ro.residAt = ro.at
}

// RecordPath folds one validated, clusterized hop path into the
// aggregate: the reporter at srcCluster observed the destination-side
// tail path (source end first, per-link latency estimates in linkMS)
// toward dst. The same identity rule as Record applies: srcCluster must
// be the serving atlas's view of the reporting peer, so rotating source
// addresses replaces this reporter's stored path instead of adding a
// second agreeing voice. Malformed paths (too short, mismatched linkMS,
// repeated clusters) are dropped — the ingest validates, this re-checks.
func (g *Aggregator) RecordPath(srcCluster int32, dst netsim.Prefix, path []cluster.ClusterID, linkMS []float64) {
	if len(path) < 2 || len(linkMS) != len(path)-1 {
		return
	}
	if len(path) > MaxPathTailClusters {
		path = path[len(path)-MaxPathTailClusters:]
		linkMS = linkMS[len(linkMS)-(len(path)-1):]
	}
	seen := make(map[cluster.ClusterID]bool, len(path))
	for _, c := range path {
		if c < 0 || seen[c] {
			return
		}
		seen[c] = true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ro := g.reporterSlotLocked(srcCluster, dst)
	ro.path = append([]cluster.ClusterID(nil), path...)
	ro.linkMS = append([]float64(nil), linkMS...)
	ro.pathAt = ro.at
}

// reporterSlotLocked returns (creating and time-stamping) the reporter's
// slot for dst, applying the prefix and per-prefix reporter bounds.
func (g *Aggregator) reporterSlotLocked(srcCluster int32, dst netsim.Prefix) *reporterObs {
	now := g.nowFn()
	g.recorded++
	pa := g.prefixes[dst]
	if pa == nil {
		if len(g.prefixes) >= g.cfg.MaxPrefixes {
			g.evictStalestPrefixLocked()
		}
		pa = &prefixAgg{reporters: make(map[int32]*reporterObs)}
		g.prefixes[dst] = pa
	}
	ro := pa.reporters[srcCluster]
	if ro == nil {
		if len(pa.reporters) >= g.cfg.MaxReportersPerPrefix {
			evictStalestReporter(pa)
		}
		ro = &reporterObs{}
		pa.reporters[srcCluster] = ro
	}
	ro.at = now
	if now.After(pa.newest) {
		pa.newest = now
	}
	return ro
}

func (g *Aggregator) evictStalestPrefixLocked() {
	var victim netsim.Prefix
	var victimAt time.Time
	first := true
	for p, pa := range g.prefixes {
		if first || pa.newest.Before(victimAt) {
			victim, victimAt, first = p, pa.newest, false
		}
	}
	if !first {
		delete(g.prefixes, victim)
		g.evicted++
	}
}

func evictStalestReporter(pa *prefixAgg) {
	var victim int32
	var victimAt time.Time
	first := true
	for c, r := range pa.reporters {
		if first || r.at.Before(victimAt) {
			victim, victimAt, first = c, r.at, false
		}
	}
	if !first {
		delete(pa.reporters, victim)
	}
}

// AggregatedPrefix is one prefix's robust aggregate.
type AggregatedPrefix struct {
	// Prefix is the destination /24.
	Prefix netsim.Prefix `json:"prefix"`
	// ResidualMS is the median over reporters' residuals (measured minus
	// predicted RTT, positive = atlas underpredicts).
	ResidualMS float64 `json:"residual_ms"`
	// Reporters is how many distinct source clusters back the aggregate.
	Reporters int `json:"reporters"`
}

// AggregatedPath is one destination prefix's reporter-voted path tail:
// the longest destination-side cluster sequence any group of reporters
// shares, with per-link vote counts so the consumer can trim it to its
// own agreement bar (see AgreedPaths).
type AggregatedPath struct {
	// Prefix is the destination /24 the tail leads to.
	Prefix netsim.Prefix `json:"prefix"`
	// Clusters is the tail, source end first, destination attachment last.
	Clusters []cluster.ClusterID `json:"clusters"`
	// LinkMS is the per-link one-way latency estimate, the median over
	// the reporters agreeing on that link (len = len(Clusters)-1).
	LinkMS []float64 `json:"link_ms"`
	// LinkReporters is how many distinct reporter clusters' paths contain
	// each link at this position; counts never decrease toward the
	// destination (paths converge there), so trimming to an agreement
	// threshold always keeps a destination-side suffix.
	LinkReporters []int `json:"link_reporters"`
}

// ObservationSnapshot is the durable form of an aggregation round: what
// the build pipeline folds into the next delta.
type ObservationSnapshot struct {
	// Day is the serving atlas day the residuals were measured against.
	Day int `json:"day"`
	// TakenUnix is when the snapshot was cut (Unix seconds).
	TakenUnix int64 `json:"taken_unix"`
	// Prefixes holds one robust aggregate per destination prefix, sorted
	// by prefix.
	Prefixes []AggregatedPrefix `json:"prefixes"`
	// Paths holds one voted path tail per destination prefix that had
	// structural reports, sorted by prefix.
	Paths []AggregatedPath `json:"paths,omitempty"`
}

// Residuals indexes the snapshot for the fold: prefix -> median residual,
// keeping only aggregates backed by at least minReporters distinct source
// clusters (minReporters < 1 means 1). Callers wanting the single-liar
// median bound should require at least 3.
func (s *ObservationSnapshot) Residuals(minReporters int) map[netsim.Prefix]float64 {
	if minReporters < 1 {
		minReporters = 1
	}
	out := make(map[netsim.Prefix]float64, len(s.Prefixes))
	for _, p := range s.Prefixes {
		if p.Reporters >= minReporters {
			out[p.Prefix] = p.ResidualMS
		}
	}
	return out
}

// Snapshot cuts the current aggregate: per prefix, the median residual
// over reporters whose newest report is fresher than StaleAfter, plus the
// reporter-voted path tail for prefixes with structural reports. day
// labels the atlas the residuals were measured against.
func (g *Aggregator) Snapshot(day int) ObservationSnapshot {
	now := g.nowFn()
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := ObservationSnapshot{Day: day, TakenUnix: now.Unix()}
	for p, pa := range g.prefixes {
		var resids []float64
		var paths []*reporterObs
		for _, r := range pa.reporters {
			if r.hasResidual && now.Sub(r.residAt) <= g.cfg.StaleAfter {
				resids = append(resids, r.residualMS)
			}
			if len(r.path) >= 2 && now.Sub(r.pathAt) <= g.cfg.StaleAfter {
				paths = append(paths, r)
			}
		}
		if len(resids) > 0 {
			snap.Prefixes = append(snap.Prefixes, AggregatedPrefix{
				Prefix:     p,
				ResidualMS: median(resids),
				Reporters:  len(resids),
			})
		}
		if ap, ok := votePathTail(p, paths); ok {
			snap.Paths = append(snap.Paths, ap)
		}
	}
	sort.Slice(snap.Prefixes, func(i, j int) bool { return snap.Prefixes[i].Prefix < snap.Prefixes[j].Prefix })
	sort.Slice(snap.Paths, func(i, j int) bool { return snap.Paths[i].Prefix < snap.Paths[j].Prefix })
	return snap
}

// votePathTail reduces one prefix's stored reporter paths to the voted
// destination-side tail. Walking backward from the destination end, each
// step keeps the reporters whose paths agree on the cluster at that
// depth (majority group, ties to the smaller cluster ID); the group can
// only shrink as the walk moves toward the sources, which is what makes
// per-link vote counts monotone toward the destination and lets a single
// fabricating reporter carry a chain no further than its own vote.
func votePathTail(p netsim.Prefix, paths []*reporterObs) (AggregatedPath, bool) {
	if len(paths) == 0 {
		return AggregatedPath{}, false
	}
	var revClusters []cluster.ClusterID
	var revLinkMS []float64
	var revVotes []int
	active := paths
	for depth := 0; ; depth++ {
		groups := make(map[cluster.ClusterID][]*reporterObs)
		for _, r := range active {
			if len(r.path) <= depth {
				continue
			}
			c := r.path[len(r.path)-1-depth]
			groups[c] = append(groups[c], r)
		}
		best, bestN := cluster.ClusterID(-1), 0
		for c, g := range groups {
			if len(g) > bestN || (len(g) == bestN && c < best) {
				best, bestN = c, len(g)
			}
		}
		if bestN == 0 || len(revClusters) >= MaxPathTailClusters {
			break
		}
		active = groups[best]
		revClusters = append(revClusters, best)
		if depth > 0 {
			// The link from this cluster into the previous (more
			// destination-ward) one; every active reporter's path
			// contains it at this depth.
			var lats []float64
			for _, r := range active {
				i := len(r.path) - 1 - depth // index of `best` in r.path
				lats = append(lats, r.linkMS[i])
			}
			revLinkMS = append(revLinkMS, median(lats))
			revVotes = append(revVotes, len(active))
		}
	}
	if len(revClusters) < 2 {
		return AggregatedPath{}, false
	}
	n := len(revClusters)
	ap := AggregatedPath{
		Prefix:        p,
		Clusters:      make([]cluster.ClusterID, n),
		LinkMS:        make([]float64, n-1),
		LinkReporters: make([]int, n-1),
	}
	for i, c := range revClusters {
		ap.Clusters[n-1-i] = c
	}
	for i := range revLinkMS {
		ap.LinkMS[n-2-i] = revLinkMS[i]
		ap.LinkReporters[n-2-i] = revVotes[i]
	}
	return ap, true
}

// MinPathReporters is the hard floor on reporter agreement behind any
// shipped path structure: a single reporter — however it rotates source
// addresses — can never turn its own hop lists into atlas structure.
const MinPathReporters = 2

// AgreedPaths converts the snapshot's voted tails into fold-ready paths,
// trimming each to the longest destination-side suffix every link of
// which at least minReporters distinct reporter clusters agree on.
// minReporters below MinPathReporters is raised to it; callers wanting a
// strict single-liar bound should require at least 3 (with 2, one honest
// and one lying reporter tie and the smaller cluster ID wins). Snapshots
// come off disk (LoadSnapshot), so structurally inconsistent entries —
// truncated writes, hand edits — are skipped, never trusted.
func (s ObservationSnapshot) AgreedPaths(minReporters int) []atlas.ObservedPath {
	if minReporters < MinPathReporters {
		minReporters = MinPathReporters
	}
	var out []atlas.ObservedPath
	for _, ap := range s.Paths {
		if len(ap.Clusters) < 2 ||
			len(ap.LinkMS) != len(ap.Clusters)-1 ||
			len(ap.LinkReporters) != len(ap.LinkMS) {
			continue // malformed snapshot entry
		}
		// Votes are monotone non-decreasing toward the destination; scan
		// backward while the agreement bar holds.
		start := len(ap.LinkMS)
		for start > 0 && ap.LinkReporters[start-1] >= minReporters {
			start--
		}
		if len(ap.Clusters)-start < 2 {
			continue
		}
		out = append(out, atlas.ObservedPath{
			Dst:      ap.Prefix,
			Clusters: append([]cluster.ClusterID(nil), ap.Clusters[start:]...),
			LinkMS:   append([]float64(nil), ap.LinkMS[start:]...),
		})
	}
	return out
}

// AggregatorStats summarizes the aggregator for metrics.
type AggregatorStats struct {
	// Prefixes is the number of destination prefixes tracked.
	Prefixes int
	// Reporters is the total reporter slots in use across prefixes.
	Reporters int
	// Paths is how many reporter slots hold a clusterized hop path.
	Paths int
	// Recorded counts observations folded in since creation.
	Recorded int
	// EvictedPrefixes counts prefixes dropped to stay within MaxPrefixes.
	EvictedPrefixes int
}

// Stats summarizes the aggregator.
func (g *Aggregator) Stats() AggregatorStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := AggregatorStats{
		Prefixes:        len(g.prefixes),
		Recorded:        g.recorded,
		EvictedPrefixes: g.evicted,
	}
	for _, pa := range g.prefixes {
		st.Reporters += len(pa.reporters)
		for _, r := range pa.reporters {
			if len(r.path) >= 2 {
				st.Paths++
			}
		}
	}
	return st
}

// median returns the middle residual (mean of the middle two for even
// counts). xs is mutated (sorted).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// SaveSnapshot writes the snapshot as JSON, atomically (temp file +
// rename), so a build pipeline reading the path never sees a torn write.
func SaveSnapshot(path string, s ObservationSnapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".obs-snapshot-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot reads a snapshot written by SaveSnapshot.
func LoadSnapshot(path string) (ObservationSnapshot, error) {
	var s ObservationSnapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("feedback: snapshot %s: %w", path, err)
	}
	return s, nil
}

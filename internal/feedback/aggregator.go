package feedback

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"inano/internal/netsim"
)

// Aggregator collects upstream observations on the build server and
// reduces them to one robust residual per destination prefix, ready to
// fold into the next atlas delta (atlas.BuildDeltaWithObservations).
//
// Abuse bounds, designed in from day one (the centralized component of an
// otherwise peer-to-peer system is the obvious poisoning target):
//
//   - Reporter identity is the *source attachment cluster* derived from
//     the serving atlas, not anything the reporter claims: rotating source
//     addresses inside one network buys no extra votes.
//   - Observations dedup per (source-cluster, dst-prefix): a reporter's
//     newest residual for a destination replaces its older one instead of
//     stacking.
//   - The per-prefix aggregate is the median over reporters, so a single
//     lying reporter cannot move a prefix's aggregate outside the range of
//     the honest reporters' residuals (for >= 2 honest reporters).
//   - Residual magnitude is capped at MaxAdjustMS per observation, and
//     both the prefix table and the per-prefix reporter sets are bounded
//     with stalest-eviction.
type Aggregator struct {
	mu  sync.Mutex
	cfg AggregatorConfig

	prefixes map[netsim.Prefix]*prefixAgg
	recorded int
	evicted  int
	nowFn    func() time.Time // test hook
}

// AggregatorConfig bounds the aggregation tables. The zero value uses
// defaults.
type AggregatorConfig struct {
	// MaxPrefixes caps tracked destination prefixes (default 8192); beyond
	// it the prefix with the stalest newest-report is evicted.
	MaxPrefixes int
	// MaxReportersPerPrefix caps reporter slots per prefix (default 32);
	// beyond it the stalest reporter is evicted.
	MaxReportersPerPrefix int
	// StaleAfter drops a reporter's residual from aggregation when its
	// newest report is older than this (default 24h: an aggregate folded
	// into tomorrow's delta should reflect today's measurements).
	StaleAfter time.Duration
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.MaxPrefixes <= 0 {
		c.MaxPrefixes = 8192
	}
	if c.MaxReportersPerPrefix <= 0 {
		c.MaxReportersPerPrefix = 32
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 24 * time.Hour
	}
	return c
}

// prefixAgg is one destination prefix's reporter table.
type prefixAgg struct {
	reporters map[int32]reporterObs // keyed by source attachment cluster
	newest    time.Time
}

type reporterObs struct {
	residualMS float64
	at         time.Time
}

// NewAggregator returns an empty aggregator.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	return &Aggregator{
		cfg:      cfg.withDefaults(),
		prefixes: make(map[netsim.Prefix]*prefixAgg),
		nowFn:    time.Now,
	}
}

// Record folds one validated observation into the aggregate: the reporter
// at srcCluster observed residualMS (measured - predicted) toward dst.
// The residual is clamped to ±MaxAdjustMS. The caller (the /v1/observations
// handler) is responsible for identity: srcCluster must come from the
// serving atlas's view of the reporting peer, never from the report body.
func (g *Aggregator) Record(srcCluster int32, dst netsim.Prefix, residualMS float64) {
	if residualMS > MaxAdjustMS {
		residualMS = MaxAdjustMS
	} else if residualMS < -MaxAdjustMS {
		residualMS = -MaxAdjustMS
	}
	now := g.nowFn()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.recorded++
	pa := g.prefixes[dst]
	if pa == nil {
		if len(g.prefixes) >= g.cfg.MaxPrefixes {
			g.evictStalestPrefixLocked()
		}
		pa = &prefixAgg{reporters: make(map[int32]reporterObs)}
		g.prefixes[dst] = pa
	}
	if _, ok := pa.reporters[srcCluster]; !ok && len(pa.reporters) >= g.cfg.MaxReportersPerPrefix {
		evictStalestReporter(pa)
	}
	pa.reporters[srcCluster] = reporterObs{residualMS: residualMS, at: now}
	if now.After(pa.newest) {
		pa.newest = now
	}
}

func (g *Aggregator) evictStalestPrefixLocked() {
	var victim netsim.Prefix
	var victimAt time.Time
	first := true
	for p, pa := range g.prefixes {
		if first || pa.newest.Before(victimAt) {
			victim, victimAt, first = p, pa.newest, false
		}
	}
	if !first {
		delete(g.prefixes, victim)
		g.evicted++
	}
}

func evictStalestReporter(pa *prefixAgg) {
	var victim int32
	var victimAt time.Time
	first := true
	for c, r := range pa.reporters {
		if first || r.at.Before(victimAt) {
			victim, victimAt, first = c, r.at, false
		}
	}
	if !first {
		delete(pa.reporters, victim)
	}
}

// AggregatedPrefix is one prefix's robust aggregate.
type AggregatedPrefix struct {
	// Prefix is the destination /24.
	Prefix netsim.Prefix `json:"prefix"`
	// ResidualMS is the median over reporters' residuals (measured minus
	// predicted RTT, positive = atlas underpredicts).
	ResidualMS float64 `json:"residual_ms"`
	// Reporters is how many distinct source clusters back the aggregate.
	Reporters int `json:"reporters"`
}

// ObservationSnapshot is the durable form of an aggregation round: what
// the build pipeline folds into the next delta.
type ObservationSnapshot struct {
	// Day is the serving atlas day the residuals were measured against.
	Day int `json:"day"`
	// TakenUnix is when the snapshot was cut (Unix seconds).
	TakenUnix int64 `json:"taken_unix"`
	// Prefixes holds one robust aggregate per destination prefix, sorted
	// by prefix.
	Prefixes []AggregatedPrefix `json:"prefixes"`
}

// Residuals indexes the snapshot for the fold: prefix -> median residual,
// keeping only aggregates backed by at least minReporters distinct source
// clusters (minReporters < 1 means 1). Callers wanting the single-liar
// median bound should require at least 3.
func (s *ObservationSnapshot) Residuals(minReporters int) map[netsim.Prefix]float64 {
	if minReporters < 1 {
		minReporters = 1
	}
	out := make(map[netsim.Prefix]float64, len(s.Prefixes))
	for _, p := range s.Prefixes {
		if p.Reporters >= minReporters {
			out[p.Prefix] = p.ResidualMS
		}
	}
	return out
}

// Snapshot cuts the current aggregate: per prefix, the median residual
// over reporters whose newest report is fresher than StaleAfter. day
// labels the atlas the residuals were measured against.
func (g *Aggregator) Snapshot(day int) ObservationSnapshot {
	now := g.nowFn()
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := ObservationSnapshot{Day: day, TakenUnix: now.Unix()}
	for p, pa := range g.prefixes {
		var resids []float64
		for _, r := range pa.reporters {
			if now.Sub(r.at) <= g.cfg.StaleAfter {
				resids = append(resids, r.residualMS)
			}
		}
		if len(resids) == 0 {
			continue
		}
		snap.Prefixes = append(snap.Prefixes, AggregatedPrefix{
			Prefix:     p,
			ResidualMS: median(resids),
			Reporters:  len(resids),
		})
	}
	sort.Slice(snap.Prefixes, func(i, j int) bool { return snap.Prefixes[i].Prefix < snap.Prefixes[j].Prefix })
	return snap
}

// AggregatorStats summarizes the aggregator for metrics.
type AggregatorStats struct {
	// Prefixes is the number of destination prefixes tracked.
	Prefixes int
	// Reporters is the total reporter slots in use across prefixes.
	Reporters int
	// Recorded counts observations folded in since creation.
	Recorded int
	// EvictedPrefixes counts prefixes dropped to stay within MaxPrefixes.
	EvictedPrefixes int
}

// Stats summarizes the aggregator.
func (g *Aggregator) Stats() AggregatorStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := AggregatorStats{
		Prefixes:        len(g.prefixes),
		Recorded:        g.recorded,
		EvictedPrefixes: g.evicted,
	}
	for _, pa := range g.prefixes {
		st.Reporters += len(pa.reporters)
	}
	return st
}

// median returns the middle residual (mean of the middle two for even
// counts). xs is mutated (sorted).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// SaveSnapshot writes the snapshot as JSON, atomically (temp file +
// rename), so a build pipeline reading the path never sees a torn write.
func SaveSnapshot(path string, s ObservationSnapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".obs-snapshot-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot reads a snapshot written by SaveSnapshot.
func LoadSnapshot(path string) (ObservationSnapshot, error) {
	var s ObservationSnapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("feedback: snapshot %s: %w", path, err)
	}
	return s, nil
}

package routescope

import (
	"testing"

	"inano/internal/netsim"
)

// A small hand-built AS graph:
//
//	  1 (tier1) --- 2 (tier1)       1-2 peer
//	 /    \            \
//	3      4            5           3,4 customers of 1; 5 customer of 2
//	 \    /
//	  6 (customer of 3 and 4)
func testGraph() ([][]netsim.ASN, map[uint64]netsim.Rel) {
	rel := map[uint64]netsim.Rel{}
	set := func(a, b netsim.ASN, r netsim.Rel) {
		if a > b {
			a, b = b, a
			r = r.Invert()
		}
		rel[netsim.ASPairKey(a, b)] = r
	}
	set(1, 2, netsim.RelPeer)
	set(3, 1, netsim.RelProvider)
	set(4, 1, netsim.RelProvider)
	set(5, 2, netsim.RelProvider)
	set(6, 3, netsim.RelProvider)
	set(6, 4, netsim.RelProvider)
	paths := [][]netsim.ASN{
		{6, 3, 1, 2, 5},
		{6, 4, 1, 2, 5},
		{3, 1, 2},
		{4, 1},
	}
	return paths, rel
}

func TestPredictShortestValleyFree(t *testing.T) {
	paths, rels := testGraph()
	p := New(paths, rels, 7)
	got, options, ok := p.Predict(6, 5)
	if !ok {
		t.Fatal("no path 6->5")
	}
	if len(got) != 5 {
		t.Fatalf("path %v, want length 5", got)
	}
	if options != 2 {
		t.Fatalf("options = %d, want 2 (via 3 or via 4)", options)
	}
	if got[0] != 6 || got[2] != 1 || got[3] != 2 || got[4] != 5 {
		t.Fatalf("unexpected path %v", got)
	}
	if got[1] != 3 && got[1] != 4 {
		t.Fatalf("middle AS %v, want 3 or 4", got[1])
	}
}

func TestPredictRejectsValleys(t *testing.T) {
	// 3 -> 1 -> 4 is valley-free (up, down). But 3 -> 6 -> 4 would be a
	// valley (down to customer 6, then up to provider 4) and must never
	// be returned even though it is the same length.
	paths, rels := testGraph()
	p := New(paths, rels, 9)
	for seed := int64(0); seed < 20; seed++ {
		q := New(paths, rels, seed)
		got, _, ok := q.Predict(3, 4)
		if !ok {
			t.Fatal("no path 3->4")
		}
		if len(got) == 3 && got[1] == 6 {
			t.Fatalf("valley path %v returned", got)
		}
	}
	_ = p
}

func TestPredictSelfPath(t *testing.T) {
	paths, rels := testGraph()
	p := New(paths, rels, 1)
	got, options, ok := p.Predict(5, 5)
	if !ok || len(got) != 1 || options != 1 {
		t.Fatalf("self path = %v (%d options, ok=%v)", got, options, ok)
	}
}

func TestPredictUnknownAS(t *testing.T) {
	paths, rels := testGraph()
	p := New(paths, rels, 1)
	if _, _, ok := p.Predict(6, 99); ok {
		t.Fatal("path to unknown AS")
	}
}

func TestPredictDeterministicPerSeed(t *testing.T) {
	paths, rels := testGraph()
	a := New(paths, rels, 42)
	b := New(paths, rels, 42)
	p1, _, _ := a.Predict(6, 5)
	p2, _, _ := b.Predict(6, 5)
	if len(p1) != len(p2) {
		t.Fatal("nondeterministic")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic")
		}
	}
}

func TestRandomChoiceVariesAcrossPairs(t *testing.T) {
	// With many (src,dst) pairs, both equal-cost options should appear.
	paths, rels := testGraph()
	seen3, seen4 := false, false
	for seed := int64(0); seed < 30 && !(seen3 && seen4); seed++ {
		p := New(paths, rels, seed)
		got, _, ok := p.Predict(6, 5)
		if !ok {
			continue
		}
		if got[1] == 3 {
			seen3 = true
		}
		if got[1] == 4 {
			seen4 = true
		}
	}
	if !seen3 || !seen4 {
		t.Errorf("random choice never varied: seen3=%v seen4=%v", seen3, seen4)
	}
}

// Package routescope implements the RouteScope baseline of Mao et al. [32]:
// AS-level path inference from an AS graph with inferred relationships,
// computing the set of shortest valley-free AS paths and — following the
// paper's evaluation methodology — picking one of them uniformly at random
// per (src, dst) pair.
package routescope

import (
	"sort"

	"inano/internal/netsim"
)

// Predictor holds the observed AS graph and inferred relationships.
type Predictor struct {
	adj  map[netsim.ASN][]netsim.ASN
	rels map[uint64]netsim.Rel
	seed uint64
}

// New builds a predictor from observed AS paths and a relationship map
// (typically cluster.InferRelationships over the same paths).
func New(paths [][]netsim.ASN, rels map[uint64]netsim.Rel, seed int64) *Predictor {
	adjSet := make(map[netsim.ASN]map[netsim.ASN]bool)
	add := func(a, b netsim.ASN) {
		m := adjSet[a]
		if m == nil {
			m = make(map[netsim.ASN]bool)
			adjSet[a] = m
		}
		m[b] = true
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			add(p[i], p[i+1])
			add(p[i+1], p[i])
		}
	}
	adj := make(map[netsim.ASN][]netsim.ASN, len(adjSet))
	for a, m := range adjSet {
		list := make([]netsim.ASN, 0, len(m))
		for b := range m {
			list = append(list, b)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		adj[a] = list
	}
	return &Predictor{adj: adj, rels: rels, seed: uint64(seed)*0x9e3779b97f4a7c15 + 0xabcd}
}

func (p *Predictor) relOf(a, b netsim.ASN) netsim.Rel {
	r, ok := p.rels[netsim.ASPairKey(a, b)]
	if !ok {
		return netsim.RelPeer // unknown edges treated as peering
	}
	if a <= b {
		return r
	}
	return r.Invert()
}

// state encodes the valley-free automaton: 0 = still climbing (may use any
// edge), 1 = descended (only provider-to-customer / sibling edges remain).
type node struct {
	as   netsim.ASN
	down bool
}

// Predict returns one shortest valley-free AS path from src to dst, chosen
// uniformly at random (deterministically seeded per pair) from the set of
// shortest options, and the number of such options. ok is false when no
// valley-free path exists in the observed graph.
func (p *Predictor) Predict(src, dst netsim.ASN) (path []netsim.ASN, options int, ok bool) {
	if src == dst {
		return []netsim.ASN{src}, 1, true
	}
	if len(p.adj[src]) == 0 || len(p.adj[dst]) == 0 {
		return nil, 0, false
	}
	// BFS over (AS, down) states from src; count shortest paths and keep
	// parent sets for random reconstruction.
	type key = node
	dist := map[key]int{{src, false}: 0}
	parents := make(map[key][]key)
	frontier := []key{{src, false}}
	reachedDepth := -1
	for depth := 0; len(frontier) > 0; depth++ {
		if reachedDepth >= 0 {
			break
		}
		var next []key
		for _, u := range frontier {
			for _, v := range p.adj[u.as] {
				var vdown bool
				switch p.relOf(u.as, v) { // what v is to u
				case netsim.RelProvider: // climbing
					if u.down {
						continue
					}
					vdown = false
				case netsim.RelPeer:
					if u.down {
						continue
					}
					vdown = true
				case netsim.RelCustomer, netsim.RelSibling:
					vdown = u.down || p.relOf(u.as, v) == netsim.RelCustomer
				default:
					continue
				}
				k := key{v, vdown}
				if d, seen := dist[k]; seen {
					if d == depth+1 {
						parents[k] = append(parents[k], u)
					}
					continue
				}
				dist[k] = depth + 1
				parents[k] = []key{u}
				next = append(next, k)
				if v == dst && reachedDepth < 0 {
					reachedDepth = depth + 1
				}
			}
		}
		frontier = next
	}
	if reachedDepth < 0 {
		return nil, 0, false
	}
	// Random walk back from dst over parent sets.
	ends := make([]key, 0, 2)
	for _, down := range []bool{false, true} {
		if d, seen := dist[key{dst, down}]; seen && d == reachedDepth {
			ends = append(ends, key{dst, down})
		}
	}
	options = 0
	counts := make(map[key]int)
	var countPaths func(k key) int
	countPaths = func(k key) int {
		if k.as == src && !k.down {
			return 1
		}
		if c, ok := counts[k]; ok {
			return c
		}
		counts[k] = 0 // cycle guard; parent DAG has none, but be safe
		total := 0
		for _, pa := range parents[k] {
			total += countPaths(pa)
		}
		counts[k] = total
		return total
	}
	for _, e := range ends {
		options += countPaths(e)
	}
	if options == 0 {
		return nil, 0, false
	}
	h := p.seed ^ uint64(src)*0xbf58476d1ce4e5b9 ^ uint64(dst)*0x94d049bb133111eb
	h ^= h >> 31
	pick := int(h % uint64(options))
	var cur key
	for _, e := range ends {
		c := countPaths(e)
		if pick < c {
			cur = e
			break
		}
		pick -= c
	}
	rev := []netsim.ASN{dst}
	for !(cur.as == src && !cur.down) {
		chosen := false
		for _, pa := range parents[cur] {
			c := countPaths(pa)
			if pick < c {
				cur = pa
				rev = append(rev, cur.as)
				chosen = true
				break
			}
			pick -= c
		}
		if !chosen {
			return nil, 0, false // inconsistent counts: give up rather than loop
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, options, true
}

// Package metrics is a small dependency-free instrumentation registry for
// the query daemon: counters, gauges, and fixed-bucket histograms with
// lock-free hot paths, exposed in the Prometheus text format. It implements
// just the subset inanod needs — constant label sets chosen at registration
// time, cumulative histograms with approximate quantiles for human-readable
// stats — so the serving path carries no external client library.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style: bucket i counts observations <= Bounds[i], with an implicit +Inf
// bucket at the end. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomicFloat
	count  atomic.Uint64
}

// DefLatencyBuckets spans 100µs..10s, the range of interest for query and
// batch request latencies (seconds).
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefErrorBuckets spans relative prediction error from 1% to the feedback
// tracker's 2.0 cap — fine resolution around the "prediction basically
// right" region so error quantiles stay meaningful as accuracy improves.
var DefErrorBuckets = []float64{
	0.01, 0.02, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60, 0.85, 1.0, 1.5, 2.0,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket that holds it; observations beyond the last bound
// report the last bound. With no observations it returns 0. The estimate's
// resolution is the bucket width — good enough for dashboards, not billing.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	lo := 0.0
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			if c == 0 {
				return b
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(b-lo)
		}
		cum += c
		lo = b
	}
	return h.bounds[len(h.bounds)-1]
}

// atomicFloat is a float64 added to with CAS.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// series is one registered metric instance: a family name plus an optional
// constant label set, e.g. name="http_requests_total", labels=`handler="query"`.
type series struct {
	labels string
	value  func() float64 // scalar metrics
	hist   *Histogram     // histogram metrics (value == nil)
}

// family groups the series sharing one metric name (one HELP/TYPE block).
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series []*series
}

// Registry holds registered metrics and renders them. Registration is
// expected at startup; it is safe for concurrent use with rendering.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ, labels string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	for _, s := range f.series {
		if s.labels == labels {
			panic(fmt.Sprintf("metrics: duplicate series %s{%s}", name, labels))
		}
	}
	s := &series{labels: labels}
	f.series = append(f.series, s)
	return s
}

// NewCounter registers a counter. labels is a raw constant label list like
// `handler="query"`, or "" for none.
func (r *Registry) NewCounter(name, help, labels string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels).value = func() float64 { return float64(c.Value()) }
	return c
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels).value = func() float64 { return float64(g.Value()) }
	return g
}

// NewGaugeFunc registers a gauge whose value is sampled at render time —
// the shape for values owned elsewhere (cache stats, atlas day).
func (r *Registry) NewGaugeFunc(name, help, labels string, fn func() float64) {
	r.register(name, help, "gauge", labels).value = fn
}

// NewHistogram registers a histogram over the given ascending upper bounds
// (nil means DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help, labels string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds not ascending")
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, "histogram", labels).hist = h
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			if s.hist != nil {
				err = writeHistogram(w, f.name, s.labels, s.hist)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.labels), formatValue(s.value()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := formatValue(b)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="`+le+`"`)), cum); err != nil {
			return err
		}
	}
	// The +Inf bucket equals _count by definition; read count last so the
	// rendered buckets never exceed it under concurrent Observes.
	total := cum + h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="+Inf"`)), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(labels), formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), total)
	return err
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatValue renders floats the way Prometheus expects: integers without a
// decimal point, everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

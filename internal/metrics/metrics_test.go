package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	cq := r.NewCounter("http_requests_total", "Total HTTP requests.", `handler="query"`)
	cb := r.NewCounter("http_requests_total", "Total HTTP requests.", `handler="batch"`)
	g := r.NewGauge("inflight_requests", "Requests currently being served.", "")
	r.NewGaugeFunc("atlas_day", "Measurement day of the serving atlas.", "", func() float64 { return 7 })

	cq.Inc()
	cq.Add(2)
	cb.Inc()
	g.Set(5)
	g.Dec()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP http_requests_total Total HTTP requests.",
		"# TYPE http_requests_total counter",
		`http_requests_total{handler="query"} 3`,
		`http_requests_total{handler="batch"} 1`,
		"# TYPE inflight_requests gauge",
		"inflight_requests 4",
		"atlas_day 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE block per family, even with two series.
	if n := strings.Count(out, "# TYPE http_requests_total counter"); n != 1 {
		t.Errorf("family header written %d times, want 1", n)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Request latency.", "", []float64{0.01, 0.1, 1})
	for i := 0; i < 50; i++ {
		h.Observe(0.005) // -> le=0.01
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.05) // -> le=0.1
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // -> +Inf
	}

	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := 50*0.005 + 40*0.05 + 10*5.0
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 50`,
		`latency_seconds_bucket{le="0.1"} 90`,
		`latency_seconds_bucket{le="1"} 90`,
		`latency_seconds_bucket{le="+Inf"} 100`,
		"latency_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// The median falls in the first bucket, p90 at the 0.1 boundary, p99
	// beyond the last bound (clamped to it).
	if q := h.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Errorf("p50 = %v, want in (0, 0.01]", q)
	}
	if q := h.Quantile(0.9); math.Abs(q-0.1) > 1e-9 {
		t.Errorf("p90 = %v, want 0.1", q)
	}
	if q := h.Quantile(0.99); q != 1 {
		t.Errorf("p99 = %v, want clamped to 1", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("empty_seconds", "Empty histogram.", "", nil)
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "h", "", nil)
	c := r.NewCounter("c", "c", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%100) / 1000)
				c.Inc()
			}
		}(g)
	}
	// Render concurrently with observation to exercise the lock-free reads.
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter = %d, histogram count = %d, want 8000", c.Value(), h.Count())
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "d", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	r.NewCounter("dup", "d", "")
}

package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

type batchAnswer struct {
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Found bool   `json:"found"`
	Day   int    `json:"day"`
	Error string `json:"error"`
}

// runBatch streams lines through the router's /v1/batch and returns the
// decoded answer lines in arrival order.
func runBatch(t *testing.T, url string, lines []string) []batchAnswer {
	t.Helper()
	pr, pw := io.Pipe()
	go func() {
		for _, l := range lines {
			if _, err := io.WriteString(pw, l+"\n"); err != nil {
				return
			}
		}
		pw.Close()
	}()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out []batchAnswer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var a batchAnswer
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("unparseable answer line %q: %v", sc.Text(), err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func batchLine(i int) string {
	return fmt.Sprintf(`{"src":"10.0.0.1","dst":%q}`, dstForIndex(i))
}

func TestBatchReassemblesInOrderAcrossReplicas(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1), newFakeReplica(t, 2)}
	rt, ts := newTestRouter(t, replicas, func(cfg *RouterConfig) {
		cfg.Window = 8 // small window so credit flow control actually engages
	})

	const n = 120
	var lines []string
	for i := 0; i < n; i++ {
		lines = append(lines, batchLine(i))
	}
	answers := runBatch(t, ts.URL, lines)
	if len(answers) != n {
		t.Fatalf("got %d answers, want %d", len(answers), n)
	}
	perReplica := make(map[int]int)
	for i, a := range answers {
		if a.Error != "" {
			t.Fatalf("answer %d: unexpected error %q", i, a.Error)
		}
		if a.Dst != dstForIndex(i) {
			t.Fatalf("answer %d out of order: dst %q, want %q", i, a.Dst, dstForIndex(i))
		}
		// Each line must have been answered by its ring owner.
		ip, _ := parseDst(a.Dst)
		want := replicaByURL(replicas, rt.Ring().Owner(KeyForCluster(ClusterID(ip>>8)))).id
		if a.Day != want {
			t.Fatalf("answer %d served by replica %d, owner is %d", i, a.Day, want)
		}
		perReplica[a.Day]++
	}
	if len(perReplica) != 3 {
		t.Fatalf("only %d replicas served batch lines: %v", len(perReplica), perReplica)
	}
	if got := rt.batchLines.Value(); got != n {
		t.Fatalf("batch_lines metric = %d, want %d", got, n)
	}
}

func parseDst(s string) (uint32, error) {
	ip, err := parseIPv4ForTest(s)
	return ip, err
}

func parseIPv4ForTest(s string) (uint32, error) {
	var a, b, c, d uint32
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, err
	}
	return a<<24 | b<<16 | c<<8 | d, nil
}

// TestBatchRetriesOnMidStreamDeath kills one replica's stream after a
// few answers and asserts every pair is still answered exactly once, in
// order, with the dead replica's unanswered lines re-routed.
func TestBatchRetriesOnMidStreamDeath(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1), newFakeReplica(t, 2)}
	rt, ts := newTestRouter(t, replicas, func(cfg *RouterConfig) {
		cfg.Window = 8
	})
	// Replica 0 dies after answering 3 batch lines on any stream.
	replicas[0].dieAfterBatchLines.Store(3)

	const n = 90
	var lines []string
	for i := 0; i < n; i++ {
		lines = append(lines, batchLine(i))
	}
	answers := runBatch(t, ts.URL, lines)
	if len(answers) != n {
		t.Fatalf("got %d answers, want %d", len(answers), n)
	}
	fromDead := 0
	for i, a := range answers {
		if a.Error != "" {
			t.Fatalf("answer %d: error %q", i, a.Error)
		}
		if a.Dst != dstForIndex(i) {
			t.Fatalf("answer %d out of order: dst %q, want %q", i, a.Dst, dstForIndex(i))
		}
		if a.Day == 0 {
			fromDead++
		}
	}
	if fromDead > 3 {
		t.Fatalf("dead replica answered %d lines after its death threshold of 3", fromDead)
	}
	if rt.batchRetry.Value() == 0 {
		t.Fatal("no batch retries recorded though a replica died mid-stream")
	}
	// The dead replica must be out of the ring.
	if rt.Ring().Len() != 2 {
		t.Fatalf("ring has %d nodes, want 2 after mid-stream death", rt.Ring().Len())
	}
}

// TestBatchRetryAfterInputEOF reproduces the post-EOF retry-burst
// deadlock: one replica swallows its whole sub-batch and fails only at
// body EOF — after the client stream ended, when every remaining
// sub-stream is a one-shot. Its pairs are retried across both
// survivors, which (like a real inanod) window-buffer answers; unless
// the dispatcher ends EVERY open request body once the burst drains,
// the survivor that did not receive the burst's last pair holds its
// retries forever and the batch hangs.
func TestBatchRetryAfterInputEOF(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1), newFakeReplica(t, 2)}
	for _, f := range replicas {
		f.windowed.Store(true)
	}
	replicas[0].stallUntilEOF.Store(true)
	rt, ts := newTestRouter(t, replicas, func(cfg *RouterConfig) {
		cfg.Window = 60 // all input fits in the credit window: EOF precedes the failure
	})

	const n = 40
	var lines []string
	for i := 0; i < n; i++ {
		lines = append(lines, batchLine(i))
	}
	done := make(chan []batchAnswer, 1)
	go func() { done <- runBatch(t, ts.URL, lines) }()
	var answers []batchAnswer
	select {
	case answers = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("batch hung: post-EOF retry burst left a sub-stream's write side open")
	}
	if len(answers) != n {
		t.Fatalf("got %d answers, want %d", len(answers), n)
	}
	for i, a := range answers {
		if a.Error != "" {
			t.Fatalf("answer %d: error %q", i, a.Error)
		}
		if a.Dst != dstForIndex(i) {
			t.Fatalf("answer %d out of order: dst %q, want %q", i, a.Dst, dstForIndex(i))
		}
		if a.Day == 0 {
			t.Fatalf("answer %d claims the stalled replica served it", i)
		}
	}
	if rt.batchRetry.Value() == 0 {
		t.Fatal("no batch retries recorded though a replica swallowed its sub-batch")
	}
	if rt.Ring().Len() != 2 {
		t.Fatalf("ring has %d nodes, want 2 after the stalled replica failed", rt.Ring().Len())
	}
}

func TestBatchInputErrorTerminalLine(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0)}
	_, ts := newTestRouter(t, replicas, nil)

	answers := runBatch(t, ts.URL, []string{
		batchLine(0),
		batchLine(1),
		`{"src":"10.0.0.1","dst":"not-an-ip"}`,
	})
	if len(answers) != 3 {
		t.Fatalf("got %d lines, want 2 answers + 1 terminal error", len(answers))
	}
	for i := 0; i < 2; i++ {
		if answers[i].Error != "" || answers[i].Dst != dstForIndex(i) {
			t.Fatalf("line %d: %+v", i, answers[i])
		}
	}
	term := answers[2]
	if term.Src != "" || term.Error == "" {
		t.Fatalf("terminal line: %+v", term)
	}
	// Same shape a single inanod would emit for the same bad input.
	if want := `line 3: dst: bad IPv4 address "not-an-ip"`; term.Error != want {
		t.Fatalf("terminal error %q, want %q", term.Error, want)
	}
}

func TestBatchEmptyStream(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0)}
	_, ts := newTestRouter(t, replicas, nil)
	answers := runBatch(t, ts.URL, nil)
	if len(answers) != 0 {
		t.Fatalf("empty batch produced %d lines", len(answers))
	}
}

// TestBatchStreamsIncrementally proves answers flow before the client
// closes its request stream: send one pair, read its answer while the
// request body is still open.
func TestBatchStreamsIncrementally(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1)}
	_, ts := newTestRouter(t, replicas, nil)

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type res struct {
		resp *http.Response
		err  error
	}
	resCh := make(chan res, 1)
	go func() {
		r, err := http.DefaultClient.Do(req)
		resCh <- res{r, err}
	}()

	if _, err := io.WriteString(pw, batchLine(0)+"\n"); err != nil {
		t.Fatal(err)
	}
	var r res
	select {
	case r = <-resCh:
	case <-time.After(10 * time.Second):
		t.Fatal("no response headers while request stream open")
	}
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.resp.Body.Close()

	br := bufio.NewReader(r.resp.Body)
	lineCh := make(chan string, 1)
	go func() {
		line, _ := br.ReadString('\n')
		lineCh <- line
	}()
	var first string
	select {
	case first = <-lineCh:
	case <-time.After(10 * time.Second):
		t.Fatal("no answer line while request stream open")
	}
	var a batchAnswer
	if err := json.Unmarshal([]byte(first), &a); err != nil || a.Dst != dstForIndex(0) {
		t.Fatalf("first answer %q (err %v)", first, err)
	}

	// Close out cleanly: one more pair, then EOF.
	if _, err := io.WriteString(pw, batchLine(1)+"\n"); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rest), dstForIndex(1)) {
		t.Fatalf("second answer missing from %q", rest)
	}
}

package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"inano/internal/netsim"
)

// fakeReplica speaks just enough of the inanod HTTP contract for the
// router: /healthz with a drain toggle, /v1/query and /v1/relay echoing
// which replica answered (in the "day" field, so assertions ride the
// forwarded-verbatim body), and a streaming /v1/batch that answers each
// line incrementally and can be told to die mid-stream.
type fakeReplica struct {
	id       int
	ts       *httptest.Server
	draining atomic.Bool
	// dieAfterBatchLines > 0: the next batch stream aborts (handler
	// returns, tearing the response) after answering that many lines.
	dieAfterBatchLines atomic.Int64
	// windowed: honor the router's ?window= like a real inanod — answers
	// stay buffered until a full window (or body EOF) flushes them.
	windowed atomic.Bool
	// stallUntilEOF: swallow the whole sub-batch answering nothing and
	// end the response only at body EOF — a failure the router can only
	// see *after* it has closed the sub-stream's write side.
	stallUntilEOF atomic.Bool
	queries       atomic.Int64
	batchLines    atomic.Int64
}

func newFakeReplica(t *testing.T, id int) *fakeReplica {
	t.Helper()
	f := &fakeReplica{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"draining"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	serve := func(w http.ResponseWriter, src, dst string) {
		if f.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"draining"}`)
			return
		}
		f.queries.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"src": src, "dst": dst, "found": true, "day": f.id,
		})
	}
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		serve(w, q.Get("src"), q.Get("dst"))
	})
	mux.HandleFunc("/v1/relay", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		serve(w, q.Get("src"), q.Get("dst"))
	})
	mux.HandleFunc("/v1/rank", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var req struct {
			Candidates []string `json:"candidates"`
		}
		json.Unmarshal(body, &req)
		serve(w, "", req.Candidates[0])
	})
	mux.HandleFunc("/v1/batch", f.handleBatch)
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeReplica) handleBatch(w http.ResponseWriter, r *http.Request) {
	if f.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	if f.stallUntilEOF.Load() {
		io.Copy(io.Discard, r.Body)
		return
	}
	window := 0
	if f.windowed.Load() {
		window, _ = strconv.Atoi(r.URL.Query().Get("window"))
	}
	enc := json.NewEncoder(w)
	sc := bufio.NewScanner(r.Body)
	answered, buffered := int64(0), 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if die := f.dieAfterBatchLines.Load(); die > 0 && answered >= die {
			// Handler return tears the response mid-stream: the router sees
			// EOF with the write side still open and pending lines unanswered.
			return
		}
		var req struct {
			Src string `json:"src"`
			Dst string `json:"dst"`
		}
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			enc.Encode(map[string]any{"error": "bad pair: " + err.Error()})
			rc.Flush()
			return
		}
		enc.Encode(map[string]any{
			"src": req.Src, "dst": req.Dst, "found": true, "day": f.id,
		})
		buffered++
		if window <= 0 || buffered >= window {
			rc.Flush()
			buffered = 0
		}
		answered++
		f.batchLines.Add(1)
	}
	// Body EOF: the handler return flushes whatever the window held back.
}

// clusterOfPrefix is the test routing table: every prefix is its own
// cluster, so distinct destinations spread over the ring.
func clusterOfPrefix(p netsim.Prefix) (ClusterID, bool) {
	return ClusterID(p), true
}

func newTestRouter(t *testing.T, replicas []*fakeReplica, mut func(*RouterConfig)) (*Router, *httptest.Server) {
	t.Helper()
	var nodes []string
	for _, f := range replicas {
		nodes = append(nodes, f.ts.URL)
	}
	cfg := RouterConfig{
		Nodes:     nodes,
		ClusterOf: clusterOfPrefix,
		Window:    16,
		Logf:      t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// dstForIndex generates distinct valid destination addresses.
func dstForIndex(i int) string {
	return fmt.Sprintf("10.%d.%d.1", (i>>8)&255, i&255)
}

func replicaByURL(replicas []*fakeReplica, url string) *fakeReplica {
	for _, f := range replicas {
		if f.ts.URL == url {
			return f
		}
	}
	return nil
}

func TestQueryRoutesToRingOwner(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1), newFakeReplica(t, 2)}
	rt, ts := newTestRouter(t, replicas, nil)

	for i := 0; i < 50; i++ {
		dst := dstForIndex(i)
		ip, err := netsim.ParseIPv4(dst)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := clusterOfPrefix(netsim.PrefixOf(ip))
		want := rt.Ring().Owner(KeyForCluster(c))

		resp, err := http.Get(ts.URL + "/v1/query?src=10.0.0.1&dst=" + dst)
		if err != nil {
			t.Fatal(err)
		}
		var res struct {
			Dst string `json:"dst"`
			Day int    `json:"day"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dst %s: status %d", dst, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Inano-Backend"); got != want {
			t.Fatalf("dst %s served by %s, ring owner is %s", dst, got, want)
		}
		if res.Day != replicaByURL(replicas, want).id {
			t.Fatalf("dst %s: answer from replica %d, owner id %d", dst, res.Day, replicaByURL(replicas, want).id)
		}
		if res.Dst != dst {
			t.Fatalf("dst echoed as %q", res.Dst)
		}
	}
	// The table spreads 50 destinations; every replica should have seen some.
	for _, f := range replicas {
		if f.queries.Load() == 0 {
			t.Errorf("replica %d served no queries: partitioning is not spreading", f.id)
		}
	}
}

func TestProxyRetriesOnDrainingReplica(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1), newFakeReplica(t, 2)}
	rt, ts := newTestRouter(t, replicas, nil)

	// Find a destination owned by replica 0, then drain replica 0.
	var dst, owner string
	for i := 0; i < 1000; i++ {
		d := dstForIndex(i)
		ip, _ := netsim.ParseIPv4(d)
		c, _ := clusterOfPrefix(netsim.PrefixOf(ip))
		if o := rt.Ring().Owner(KeyForCluster(c)); o == replicas[0].ts.URL {
			dst, owner = d, o
			break
		}
	}
	if dst == "" {
		t.Fatal("no destination owned by replica 0 in 1000 tries")
	}
	replicas[0].draining.Store(true)

	resp, err := http.Get(ts.URL + "/v1/query?src=10.0.0.1&dst=" + dst)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via fallback", resp.StatusCode)
	}
	backend := resp.Header.Get("X-Inano-Backend")
	if backend == owner {
		t.Fatalf("served by draining owner %s", backend)
	}
	if got := resp.Header.Get("X-Inano-Attempts"); got != "2" {
		t.Fatalf("X-Inano-Attempts = %q, want 2", got)
	}
	// The 503 also knocked the replica out of the ring for later requests.
	if rt.Ring().Len() != 2 {
		t.Fatalf("ring has %d nodes after drain 503, want 2", rt.Ring().Len())
	}

	// A second query for the same destination goes straight to the new
	// owner, no retry.
	resp2, err := http.Get(ts.URL + "/v1/query?src=10.0.0.1&dst=" + dst)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Inano-Attempts"); got != "1" {
		t.Fatalf("second query X-Inano-Attempts = %q, want 1", got)
	}
}

func TestHealthLoopRestoresReplica(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1)}
	rt, _ := newTestRouter(t, replicas, func(cfg *RouterConfig) {
		cfg.HealthInterval = 10 * time.Millisecond
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.Run(ctx)

	replicas[0].draining.Store(true)
	waitFor(t, time.Second, func() bool { return rt.Ring().Len() == 1 })
	replicas[0].draining.Store(false)
	waitFor(t, time.Second, func() bool { return rt.Ring().Len() == 2 })
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestRouterHealthzDegradedAndDown(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1)}
	rt, ts := newTestRouter(t, replicas, nil)

	check := func(wantCode int, wantStatus string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Status string `json:"status"`
			Live   int    `json:"live"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantCode || h.Status != wantStatus {
			t.Fatalf("healthz = %d %q, want %d %q", resp.StatusCode, h.Status, wantCode, wantStatus)
		}
	}
	check(http.StatusOK, "ok")
	rt.markDown(replicas[0].ts.URL, "test")
	check(http.StatusOK, "degraded")
	rt.markDown(replicas[1].ts.URL, "test")
	check(http.StatusServiceUnavailable, "down")
	rt.markUp(replicas[1].ts.URL)
	check(http.StatusOK, "degraded")
}

func TestRankRoutesByFirstCandidate(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1), newFakeReplica(t, 2)}
	rt, ts := newTestRouter(t, replicas, nil)

	dst := dstForIndex(7)
	ip, _ := netsim.ParseIPv4(dst)
	c, _ := clusterOfPrefix(netsim.PrefixOf(ip))
	want := rt.Ring().Owner(KeyForCluster(c))

	body := fmt.Sprintf(`{"src":"10.0.0.1","candidates":[%q,"10.9.9.1"]}`, dst)
	resp, err := http.Post(ts.URL+"/v1/rank", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Inano-Backend"); got != want {
		t.Fatalf("rank served by %s, first candidate's owner is %s", got, want)
	}
}

func TestQueryBadDestination(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0)}
	_, ts := newTestRouter(t, replicas, nil)
	resp, err := http.Get(ts.URL + "/v1/query?src=10.0.0.1&dst=not-an-ip")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if replicas[0].queries.Load() != 0 {
		t.Fatal("bad destination reached a replica")
	}
}

func TestNoLiveReplica(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t, 0)}
	rt, ts := newTestRouter(t, replicas, nil)
	rt.markDown(replicas[0].ts.URL, "test")
	resp, err := http.Get(ts.URL + "/v1/query?src=10.0.0.1&dst=10.0.0.2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

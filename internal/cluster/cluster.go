// Package cluster turns the interfaces observed in traceroutes into PoP
// clusters, mirroring iNano's server-side processing: alias resolution
// (grouping interfaces of one router), DNS-name location hints (grouping
// routers of one PoP), and Gao-style AS relationship inference from
// observed AS paths.
//
// The resolution *tools* are simulated against ground truth with
// configurable success rates — exactly as real alias resolvers and DNS
// parsers succeed only partially — so the resulting clustering is
// realistically incomplete: some PoPs split into several clusters. The
// returned Clustering exposes only inferred data to the atlas builder.
package cluster

import (
	"sort"

	"inano/internal/netsim"
)

// ClusterID identifies one inferred PoP cluster; IDs are dense in
// [0, NumClusters).
type ClusterID int32

// Config tunes the simulated resolution tools.
type Config struct {
	// AliasProb is the probability that alias resolution successfully
	// ties one observed interface to its router's canonical interface.
	AliasProb float64
	// DNSProb is the probability that an interface's reverse DNS name
	// reveals its (AS, city) location.
	DNSProb float64
}

// DefaultConfig matches the evaluation's resolution quality: most
// interfaces resolve, a tail does not, so a few percent of PoPs split.
func DefaultConfig() Config {
	return Config{AliasProb: 0.85, DNSProb: 0.7}
}

// Clustering is the inferred interface-to-cluster mapping.
type Clustering struct {
	// ClusterOf maps every clustered interface IP to its cluster.
	ClusterOf map[netsim.IP]ClusterID
	// NumClusters bounds the ID space: IDs run [0, NumClusters).
	NumClusters int
	// ClusterAS is the AS owning each cluster (from prefix origins, which
	// BGP feeds provide comprehensively).
	ClusterAS []netsim.ASN
	// TruePoP is the majority ground-truth PoP per cluster. Used only by
	// evaluation code to score clustering quality; the predictor never
	// sees it.
	TruePoP []netsim.PoPID
}

// dsu is a union-find structure over interface indices.
type dsu struct {
	parent []int32
	rank   []int8
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

func (d *dsu) find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int32) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
}

// Cluster groups the observed infrastructure interfaces into PoP clusters.
// top provides the ground truth that the simulated resolution tools consult;
// the success of each resolution is a deterministic hash of the interface,
// so repeated runs agree.
func Cluster(top *netsim.Topology, ifaces []netsim.IP, cfg Config) *Clustering {
	// Dedup and sort for determinism.
	set := make(map[netsim.IP]bool, len(ifaces))
	for _, ip := range ifaces {
		if top.RouterPoP(ip) >= 0 {
			set[ip] = true
		}
	}
	all := make([]netsim.IP, 0, len(set))
	for ip := range set {
		all = append(all, ip)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	idx := make(map[netsim.IP]int32, len(all))
	for i, ip := range all {
		idx[ip] = int32(i)
	}
	d := newDSU(len(all))

	// Alias resolution: each interface independently resolves to its
	// router identity with AliasProb; resolved interfaces of one router
	// merge via the router's first resolved interface.
	routerAnchor := make(map[netsim.RouterID]int32)
	// DNS hints: interfaces whose reverse name parses merge via their
	// (AS, city) identity, which within an AS uniquely names a PoP.
	type popKey struct {
		as   netsim.ASN
		city int
	}
	dnsAnchor := make(map[popKey]int32)

	for i, ip := range all {
		if succeeds(uint64(ip), 0xA11A5, cfg.AliasProb) {
			rid := top.IfaceRouter[ip]
			if a, ok := routerAnchor[rid]; ok {
				d.union(int32(i), a)
			} else {
				routerAnchor[rid] = int32(i)
			}
		}
		if succeeds(uint64(ip), 0xD0D0, cfg.DNSProb) {
			pop := top.PoPs[top.RouterPoP(ip)]
			k := popKey{as: pop.AS, city: pop.City}
			if a, ok := dnsAnchor[k]; ok {
				d.union(int32(i), a)
			} else {
				dnsAnchor[k] = int32(i)
			}
		}
	}

	// Assign dense cluster IDs in first-seen order.
	c := &Clustering{ClusterOf: make(map[netsim.IP]ClusterID, len(all))}
	rootID := make(map[int32]ClusterID)
	popVotes := make([]map[netsim.PoPID]int, 0)
	for i, ip := range all {
		r := d.find(int32(i))
		id, ok := rootID[r]
		if !ok {
			id = ClusterID(c.NumClusters)
			rootID[r] = id
			c.NumClusters++
			c.ClusterAS = append(c.ClusterAS, 0)
			popVotes = append(popVotes, make(map[netsim.PoPID]int))
		}
		c.ClusterOf[ip] = id
		popVotes[id][top.RouterPoP(ip)]++
	}
	c.TruePoP = make([]netsim.PoPID, c.NumClusters)
	for id, votes := range popVotes {
		best, bestN := netsim.PoPID(-1), -1
		for p, n := range votes {
			if n > bestN || (n == bestN && p < best) {
				best, bestN = p, n
			}
		}
		c.TruePoP[id] = best
		c.ClusterAS[id] = top.PoPAS(best)
	}
	return c
}

// Stabilize remaps cur's cluster IDs to agree with prev wherever the two
// clusterings share interfaces, mirroring the production server's
// persistent cluster registry: without it, every day's atlas would live in
// a fresh ID space and day-over-day deltas would rewrite every link. Each
// current cluster adopts the previous ID its member interfaces vote for
// (majority, ties to the smaller ID, first claim wins); unmatched clusters
// get fresh IDs above prev's space. The result may have unused IDs ("holes")
// where previous clusters disappeared; NumClusters covers the full space.
func Stabilize(cur, prev *Clustering) *Clustering {
	if prev == nil {
		return cur
	}
	votes := make([]map[ClusterID]int, cur.NumClusters)
	for ip, c := range cur.ClusterOf {
		if pc, ok := prev.ClusterOf[ip]; ok {
			if votes[c] == nil {
				votes[c] = make(map[ClusterID]int)
			}
			votes[c][pc]++
		}
	}
	remap := make([]ClusterID, cur.NumClusters)
	used := make(map[ClusterID]bool)
	next := ClusterID(prev.NumClusters)
	for c := 0; c < cur.NumClusters; c++ {
		best, bestN := ClusterID(-1), 0
		for pc, n := range votes[c] {
			if used[pc] {
				continue
			}
			if n > bestN || (n == bestN && (best < 0 || pc < best)) {
				best, bestN = pc, n
			}
		}
		if best < 0 {
			best = next
			next++
		}
		used[best] = true
		remap[c] = best
	}
	out := &Clustering{
		ClusterOf:   make(map[netsim.IP]ClusterID, len(cur.ClusterOf)),
		NumClusters: int(next),
	}
	out.ClusterAS = make([]netsim.ASN, next)
	out.TruePoP = make([]netsim.PoPID, next)
	for i := range out.TruePoP {
		out.TruePoP[i] = -1
	}
	for ip, c := range cur.ClusterOf {
		out.ClusterOf[ip] = remap[c]
	}
	for c := 0; c < cur.NumClusters; c++ {
		out.ClusterAS[remap[c]] = cur.ClusterAS[c]
		out.TruePoP[remap[c]] = cur.TruePoP[c]
	}
	return out
}

// succeeds is the deterministic coin for one resolution attempt.
func succeeds(x, salt uint64, p float64) bool {
	h := x*0x9e3779b97f4a7c15 ^ salt*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0x94d049bb133111eb
	h ^= h >> 27
	return float64(h>>11)/float64(1<<53) < p
}

package cluster

import (
	"sort"

	"inano/internal/netsim"
)

// ASPathOf extracts the AS-level path from a traceroute's responsive hops:
// map each interface to its origin AS via the prefix table, drop gaps, and
// collapse consecutive duplicates. ok is false if the result has an AS-level
// loop (the paper discards such paths).
func ASPathOf(hops []netsim.IP, prefixAS map[netsim.Prefix]netsim.ASN) (path []netsim.ASN, ok bool) {
	return ASPathOfFunc(hops, func(p netsim.Prefix) netsim.ASN { return prefixAS[p] })
}

// ASPathOfFunc is ASPathOf over an origin-lookup function instead of a
// materialized table, for callers (the streaming atlas builder) whose
// origin data is arithmetic rather than a map. origin returns 0 for
// unknown prefixes (0 is never a valid ASN).
func ASPathOfFunc(hops []netsim.IP, origin func(netsim.Prefix) netsim.ASN) (path []netsim.ASN, ok bool) {
	for _, ip := range hops {
		if ip == 0 {
			continue
		}
		asn := origin(netsim.PrefixOf(ip))
		if asn == 0 {
			continue
		}
		if n := len(path); n > 0 && path[n-1] == asn {
			continue
		}
		path = append(path, asn)
	}
	seen := make(map[netsim.ASN]bool, len(path))
	for _, a := range path {
		if seen[a] {
			return nil, false
		}
		seen[a] = true
	}
	return path, len(path) > 0
}

// InferRelationships runs a Gao-style relationship inference over observed
// AS paths. For each path, the highest-degree AS is assumed to be the top of
// the hill: edges before it are customer-to-provider, edges after are
// provider-to-customer. Votes aggregate across paths; heavily conflicting
// edges become siblings, and un-transited edges between comparable-degree
// ASes become peers.
//
// Like the real algorithm, this is deliberately error-prone — iNano's
// refinements (§4.3) exist precisely because relationship inference cannot
// be trusted — so tests assert accuracy well below 100%.
func InferRelationships(paths [][]netsim.ASN) map[uint64]netsim.Rel {
	degree := make(map[netsim.ASN]int)
	adj := make(map[uint64]bool)
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			k := netsim.ASPairKey(p[i], p[i+1])
			if !adj[k] {
				adj[k] = true
				degree[p[i]]++
				degree[p[i+1]]++
			}
		}
	}

	// upVotes[DirASPairKey(a,b)] counts observations of a climbing to b
	// (a appears on the uphill side, so a looks like b's customer).
	upVotes := make(map[uint64]int)
	// transited marks edges seen strictly inside a path (providing
	// transit), as opposed to only at the ends.
	transited := make(map[uint64]bool)
	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		top := 0
		for i := range p {
			if degree[p[i]] > degree[p[top]] {
				top = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			if i < top {
				upVotes[netsim.DirASPairKey(p[i], p[i+1])]++
			} else {
				upVotes[netsim.DirASPairKey(p[i+1], p[i])]++
			}
			if i > 0 && i+1 < len(p) {
				transited[netsim.ASPairKey(p[i], p[i+1])] = true
			}
		}
	}

	rels := make(map[uint64]netsim.Rel, len(adj))
	keys := make([]uint64, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		a, b := netsim.ASN(k>>32), netsim.ASN(k&0xffffffff)
		ab := upVotes[netsim.DirASPairKey(a, b)] // a under b
		ba := upVotes[netsim.DirASPairKey(b, a)] // b under a
		var rel netsim.Rel                       // from a's perspective about b
		switch {
		case ab > 0 && ba > 0 && 3*min(ab, ba) >= max(ab, ba):
			rel = netsim.RelSibling
		case ab > ba:
			rel = netsim.RelProvider // b is a's provider
		case ba > ab:
			rel = netsim.RelCustomer
		default:
			rel = netsim.RelPeer
		}
		// Peer reclassification: comparable-degree ASes whose edge never
		// provides transit beyond the hilltop look settlement-free.
		if rel != netsim.RelSibling && !transited[k] {
			da, db := degree[a], degree[b]
			if da > 0 && db > 0 && da <= 4*db && db <= 4*da {
				rel = netsim.RelPeer
			}
		}
		rels[k] = rel
	}
	return rels
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RelAccuracy scores an inferred relationship map against ground truth,
// returning the fraction of shared edges classified identically. Evaluation
// helper only.
func RelAccuracy(top *netsim.Topology, inferred map[uint64]netsim.Rel) float64 {
	match, total := 0, 0
	for k, r := range inferred {
		truth, ok := top.Rels[k]
		if !ok {
			continue
		}
		total++
		if truth == r {
			match++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(match) / float64(total)
}

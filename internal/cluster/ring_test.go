package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2", "n1", ""}, 0) // shuffled, dup, empty
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("Len = %d, %d, want 3", a.Len(), b.Len())
	}
	for i := 0; i < 10000; i++ {
		key := mix64(uint64(i))
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("key %d: owner %q vs %q for same membership", i, ao, bo)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner(42); got != "" {
		t.Fatalf("empty ring Owner = %q, want \"\"", got)
	}
	if got := empty.Owners(42, 3); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	one := NewRing([]string{"only"}, 0)
	for i := 0; i < 100; i++ {
		if got := one.Owner(mix64(uint64(i))); got != "only" {
			t.Fatalf("single-node ring Owner = %q", got)
		}
	}
}

func TestRingDistributionIsRoughlyEven(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	r := NewRing(nodes, 0)
	counts := make(map[string]int)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(KeyForCluster(ClusterID(i)))]++
	}
	for _, node := range nodes {
		share := float64(counts[node]) / n
		if share < 0.20 || share > 0.47 {
			t.Errorf("node %s owns %.1f%% of keys; want within [20%%, 47%%] of a 33%% fair share (counts=%v)",
				node, share*100, counts)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property: removing
// one node moves only that node's keys, and adding a node steals roughly
// 1/n of the space without shuffling keys between surviving nodes.
func TestRingMinimalMovement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6) // 2..7 nodes
		var nodes []string
		for i := 0; i < n; i++ {
			nodes = append(nodes, fmt.Sprintf("node-%d-%d", trial, i))
		}
		full := NewRing(nodes, 0)
		gone := nodes[rng.Intn(n)]
		var rest []string
		for _, nd := range nodes {
			if nd != gone {
				rest = append(rest, nd)
			}
		}
		smaller := NewRing(rest, 0)

		const keys = 5000
		moved := 0
		for i := 0; i < keys; i++ {
			key := mix64(uint64(trial*keys + i))
			before, after := full.Owner(key), smaller.Owner(key)
			if before == gone {
				// This key had to move; it must land on the next owner in
				// the full ring's fallback order that survived.
				for _, o := range full.Owners(key, 0)[1:] {
					if o != gone {
						if after != o {
							t.Fatalf("trial %d key %d: moved to %q, want fallback %q", trial, i, after, o)
						}
						break
					}
				}
				moved++
			} else if before != after {
				t.Fatalf("trial %d key %d: moved %q -> %q though %q was removed",
					trial, i, before, after, gone)
			}
		}
		// The removed node owned ~1/n of the space; allow generous slack
		// for vnode variance.
		share := float64(moved) / keys
		if share > 2.5/float64(n) {
			t.Errorf("trial %d: removing 1 of %d nodes moved %.1f%% of keys", trial, n, share*100)
		}
	}
}

func TestRingOwnersSequence(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 0)
	for i := 0; i < 1000; i++ {
		key := mix64(uint64(i))
		owners := r.Owners(key, 0)
		if len(owners) != 4 {
			t.Fatalf("key %d: Owners returned %d nodes, want 4", i, len(owners))
		}
		seen := make(map[string]bool)
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %d: duplicate owner %q in %v", i, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %d: Owners[0]=%q != Owner=%q", i, owners[0], r.Owner(key))
		}
		if got := r.Owners(key, 2); len(got) != 2 || got[0] != owners[0] || got[1] != owners[1] {
			t.Fatalf("key %d: Owners(key,2)=%v, want prefix of %v", i, got, owners)
		}
	}
}

func TestKeySpacesDisjoint(t *testing.T) {
	// Sanity: cluster keys and prefix-fallback keys for the same small
	// integers don't collide (they'd shard together harmlessly, but the
	// tag exists so they don't systematically pile up).
	for i := 0; i < 1000; i++ {
		if KeyForCluster(ClusterID(i)) == KeyForPrefix(uint32(i)) {
			t.Fatalf("key collision at %d", i)
		}
	}
}

package cluster

// Streamed /v1/batch demux: the router reads the client's NDJSON pair
// stream, routes every line to its destination cluster's owner replica
// over a persistent per-replica sub-stream (one /v1/batch POST each,
// request body written incrementally), and reassembles the replicas'
// answer lines back into client order. Answer lines are forwarded
// byte-verbatim — the cluster's output for a pair stream is identical to
// a single node's, modulo which replica computed each line.
//
// Flow control: at most Window lines are in flight (read from the client
// but not yet emitted in order); the reassembly buffer is bounded by the
// same Window. Each sub-stream asks its replica for a window a fraction
// of ours, so whenever our credits are exhausted at least one replica
// has enough buffered lines to flush — the demux can never deadlock on
// replica-side window buffering.
//
// Failure: a replica dying mid-stream (connection error, premature EOF,
// torn line, terminal error line) fails its sub-stream exactly once; the
// lines it had not yet answered are re-routed through the rebuilt ring
// to the next owner. Pairs are answered at most once: an entry is
// retried only if its answer line never fully arrived.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"inano/internal/netsim"
)

// routerResult mirrors the replica's result-line shape for the terminal
// error lines the router emits itself (field order matters: these lines
// must look exactly like replica-written ones).
type routerResult struct {
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Found bool   `json:"found"`
	Day   int    `json:"day"`
	Error string `json:"error,omitempty"`
}

// batchEntry is one in-flight client line.
type batchEntry struct {
	seq   int
	line  []byte // raw request line, forwarded verbatim
	key   uint64
	tried []string // nodes that already failed this entry
}

func (e *batchEntry) triedNode(n string) bool {
	for _, t := range e.tried {
		if t == n {
			return true
		}
	}
	return false
}

// seqLine is one answered line heading back to the client.
type seqLine struct {
	seq  int
	line []byte // raw answer line including trailing newline
}

// subStream is one persistent /v1/batch POST to a replica. The
// dispatcher writes request lines; the reader goroutine pairs answer
// lines with the pending FIFO. fail() is idempotent: whichever side sees
// the failure first (write error or read error) claims the unanswered
// entries for retry.
type subStream struct {
	node string
	pw   *io.PipeWriter

	mu      sync.Mutex
	pending []*batchEntry
	failed  bool
	wClosed bool
}

// add appends an entry to the pending FIFO; false if the stream already
// failed (caller re-routes).
func (ss *subStream) add(e *batchEntry) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.failed {
		return false
	}
	ss.pending = append(ss.pending, e)
	return true
}

// pop pairs the next answer line with its entry; nil if the stream
// failed (answers after failure are discarded — their entries were
// already requeued) or the replica sent an unrequested line.
func (ss *subStream) pop() *batchEntry {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.failed || len(ss.pending) == 0 {
		return nil
	}
	e := ss.pending[0]
	ss.pending = ss.pending[1:]
	return e
}

// fail marks the stream dead and returns the unanswered entries, exactly
// once.
func (ss *subStream) fail() []*batchEntry {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.failed {
		return nil
	}
	ss.failed = true
	out := ss.pending
	ss.pending = nil
	return out
}

func (ss *subStream) isFailed() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.failed
}

// pendingLen reports how many entries await answers.
func (ss *subStream) pendingLen() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.pending)
}

// closeWrite ends the request body once (EOF to the replica).
func (ss *subStream) closeWrite() {
	ss.mu.Lock()
	already := ss.wClosed
	ss.wClosed = true
	ss.mu.Unlock()
	if !already {
		ss.pw.Close()
	}
}

func (ss *subStream) writeClosed() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.wClosed
}

// batchMux is the per-request demux state.
type batchMux struct {
	rt      *Router
	ctx     context.Context
	query   string // forwarded sub-request query string (window rewritten)
	results chan seqLine
	retryCh chan *batchEntry
	fatalCh chan error
	streams map[string]*subStream // dispatcher-owned
}

// handleBatch demuxes one client pair stream across the replica set.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return routerError(w, http.StatusMethodNotAllowed, "use POST")
	}
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		return routerError(w, http.StatusInternalServerError, "streaming unsupported: %v", err)
	}

	window := rt.cfg.Window
	// Sub-streams must flush before our credit window can fill: with N
	// replicas and W credits outstanding, some replica holds >= W/N
	// unanswered lines, so a sub-window of W/(2N) guarantees progress.
	subWindow := window / (2 * len(rt.order))
	if subWindow < 1 {
		subWindow = 1
	}
	q := r.URL.Query()
	q.Set("window", strconv.Itoa(subWindow))
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	m := &batchMux{
		rt:      rt,
		ctx:     ctx,
		query:   q.Encode(),
		results: make(chan seqLine, window),
		// Capacity: every outstanding entry (<= window) plus the input-EOF
		// sentinel can sit here at once without blocking a reader.
		retryCh: make(chan *batchEntry, window+1),
		fatalCh: make(chan error, 1),
		streams: make(map[string]*subStream),
	}

	credits := make(chan struct{}, window)
	inputCh := make(chan *batchEntry)
	type inputEnd struct {
		total int
		err   error
	}
	endCh := make(chan inputEnd, 1)

	// Scanner: parse + validate client lines exactly as a replica would,
	// resolve each destination's ring key, and hand entries to the
	// dispatcher under credit flow control.
	go func() {
		total := 0
		finish := func(err error) { endCh <- inputEnd{total, err}; close(inputCh) }
		scanner := bufio.NewScanner(r.Body)
		scanner.Buffer(make([]byte, 0, 4096), rt.cfg.MaxLineBytes)
		lineNo := 0
		for scanner.Scan() {
			lineNo++
			raw := scanner.Bytes()
			trimmed := trimSpace(raw)
			if len(trimmed) == 0 {
				continue
			}
			var req struct {
				Src        string `json:"src"`
				Dst        string `json:"dst"`
				DeadlineMS int64  `json:"deadline_ms"`
			}
			if err := json.Unmarshal(trimmed, &req); err != nil {
				finish(fmt.Errorf("line %d: bad pair: %v", lineNo, err))
				return
			}
			if _, err := netsim.ParseIPv4(req.Src); err != nil {
				finish(fmt.Errorf("line %d: src: %v", lineNo, err))
				return
			}
			dstIP, err := netsim.ParseIPv4(req.Dst)
			if err != nil {
				finish(fmt.Errorf("line %d: dst: %v", lineNo, err))
				return
			}
			if req.DeadlineMS < 0 {
				finish(fmt.Errorf("line %d: bad deadline_ms %d", lineNo, req.DeadlineMS))
				return
			}
			p := netsim.PrefixOf(dstIP)
			var key uint64
			if c, ok := rt.cfg.ClusterOf(p); ok {
				key = KeyForCluster(c)
			} else {
				key = KeyForPrefix(uint32(p))
			}
			e := &batchEntry{seq: total, line: append([]byte(nil), trimmed...), key: key}
			select {
			case credits <- struct{}{}:
			case <-ctx.Done():
				finish(ctx.Err())
				return
			}
			select {
			case inputCh <- e:
			case <-ctx.Done():
				finish(ctx.Err())
				return
			}
			total++
		}
		if err := scanner.Err(); err != nil {
			finish(fmt.Errorf("reading batch body: %w", err))
			return
		}
		finish(nil)
	}()

	// Dispatcher: owns the sub-stream map; routes fresh and retried
	// entries, closes write sides at input EOF.
	go m.dispatch(inputCh)

	// Collector (this goroutine): reassemble answers in seq order.
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	flush := func() {
		bw.Flush()
		_ = rc.Flush()
	}
	buf := make(map[int][]byte, window)
	next := 0
	total := -1
	var inputErr error
	inputDone := false
	var fatalErr error

	emitRun := func() error {
		wrote := false
		for {
			line, ok := buf[next]
			if !ok {
				break
			}
			delete(buf, next)
			next++
			wrote = true
			if _, err := bw.Write(line); err != nil {
				return fmt.Errorf("writing batch response: %w", err)
			}
			select {
			case <-credits:
			default:
			}
		}
		if wrote && len(m.results) == 0 {
			flush()
		}
		return nil
	}

	terminal := func(msg string) {
		enc := json.NewEncoder(bw)
		_ = enc.Encode(routerResult{Error: msg})
		flush()
	}

loop:
	for {
		if inputDone && fatalErr == nil && next >= total {
			break // all answered (or none pending past the input error)
		}
		select {
		case res := <-m.results:
			buf[res.seq] = res.line
			if err := emitRun(); err != nil {
				return err
			}
		case end := <-endCh:
			total, inputErr = end.total, end.err
			inputDone = true
			m.inputFinished()
		case fatalErr = <-m.fatalCh:
			break loop
		case <-r.Context().Done():
			return r.Context().Err()
		}
	}
	switch {
	case fatalErr != nil:
		// Emit whatever is contiguous, then the terminal line.
		_ = emitRun()
		terminal(fmt.Sprintf("batch aborted after %d results: %v", next, fatalErr))
		return fatalErr
	case inputErr != nil:
		terminal(inputErr.Error())
		return inputErr
	}
	flush()
	return nil
}

// inputFinished tells the dispatcher the client stream ended cleanly (or
// died): no more fresh entries; close current sub-stream write sides.
func (m *batchMux) inputFinished() {
	select {
	case m.retryCh <- nil: // sentinel: nil entry = input EOF
	case <-m.ctx.Done():
	}
}

// dispatch routes entries to sub-streams until the request ends.
func (m *batchMux) dispatch(inputCh chan *batchEntry) {
	inputDone := false
	for {
		select {
		case e, ok := <-inputCh:
			if !ok {
				inputCh = nil // endCh sentinel handles the close
				continue
			}
			m.routeOnce(e, inputDone)
		case e := <-m.retryCh:
			if e == nil {
				// Input-EOF sentinel: no more fresh entries are coming;
				// end every open sub-stream's request body.
				inputDone = true
				m.closeIdleWrites()
				continue
			}
			m.rt.batchRetry.Inc()
			m.routeOnce(e, inputDone)
		case <-m.ctx.Done():
			return
		}
	}
}

// routeOnce places one entry on a live, untried replica's sub-stream. A
// write failure requeues the stream's entries (this one included) via
// retryCh, so the entry is never routed twice concurrently.
func (m *batchMux) routeOnce(e *batchEntry, inputDone bool) {
	for {
		select {
		case <-m.ctx.Done():
			return
		default:
		}
		ring := m.rt.ring.Load()
		node := ""
		for _, n := range ring.Owners(e.key, 0) {
			if !e.triedNode(n) && m.rt.nodes[n].up.Load() {
				node = n
				break
			}
		}
		if node == "" {
			m.fatal(fmt.Errorf("no live replica for pair %d", e.seq))
			return
		}
		ss := m.stream(node, inputDone)
		if ss == nil {
			return
		}
		if !ss.add(e) {
			continue // stream failed between lookup and add; re-pick
		}
		if _, err := ss.pw.Write(append(e.line, '\n')); err != nil {
			// The transport tore the pipe down: the replica is gone. fail()
			// claims the pending entries — e among them, unless the reader
			// got there first — and they all come back through retryCh.
			m.rt.markDown(node, fmt.Sprintf("batch write: %v", err))
			m.requeueFailed(node, ss.fail())
			return
		}
		m.rt.batchLines.Inc()
		if inputDone && len(m.retryCh) == 0 {
			// Post-EOF retries ride one-shot sub-batches: once the burst is
			// drained, end EVERY open request body — not just this stream's.
			// Earlier entries of the same burst may sit on other streams,
			// and a replica window-buffers a bodiless-EOF-less sub-batch
			// forever (it is waiting for more lines that will never come).
			m.closeIdleWrites()
		}
		return
	}
}

// closeIdleWrites ends every open sub-stream's request body. Called by
// the dispatcher (which owns the streams map) once no more writes are
// coming: at input EOF, and after each post-EOF retry burst drains.
func (m *batchMux) closeIdleWrites() {
	for _, ss := range m.streams {
		ss.closeWrite()
	}
}

// stream returns a live sub-stream for node, opening one if the previous
// is failed/closed. Returns nil only when the mux is shutting down.
func (m *batchMux) stream(node string, inputDone bool) *subStream {
	if ss := m.streams[node]; ss != nil && !ss.isFailed() && !ss.writeClosed() {
		return ss
	}
	pr, pw := io.Pipe()
	ss := &subStream{node: node, pw: pw}
	req, err := http.NewRequestWithContext(m.ctx, http.MethodPost,
		node+"/v1/batch?"+m.query, pr)
	if err != nil {
		m.fatal(fmt.Errorf("sub-stream %s: %v", node, err))
		return nil
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	m.streams[node] = ss
	go m.readStream(ss, req)
	return ss
}

// readStream runs one sub-stream's response side: pair every answer line
// with the pending FIFO, forward it to the collector, and on any failure
// claim the unanswered entries for retry.
func (m *batchMux) readStream(ss *subStream, req *http.Request) {
	failNode := func(why string) {
		m.rt.markDown(ss.node, why)
		m.requeueFailed(ss.node, ss.fail())
	}
	resp, err := m.rt.client.Do(req)
	if err != nil {
		if m.ctx.Err() == nil {
			failNode(fmt.Sprintf("batch sub-stream: %v", err))
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		failNode(fmt.Sprintf("batch sub-stream answered %d", resp.StatusCode))
		return
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// EOF with no partial line after we closed the write side and
			// drained pending is the clean end; anything else is a failure
			// (a torn line's entry is still pending, so it gets retried).
			if err == io.EOF && len(line) == 0 && ss.writeClosed() && ss.pendingLen() == 0 {
				return
			}
			if m.ctx.Err() == nil {
				failNode(fmt.Sprintf("batch sub-stream read: %v", err))
			}
			return
		}
		var probe struct {
			Src   string `json:"src"`
			Error string `json:"error"`
		}
		if json.Unmarshal(line, &probe) != nil {
			failNode("batch sub-stream: unparseable line")
			return
		}
		if probe.Error != "" && probe.Src == "" {
			// Replica-terminal line: its stream is over; whatever it had
			// not answered moves to the next node.
			failNode(fmt.Sprintf("batch sub-stream aborted: %s", probe.Error))
			return
		}
		e := ss.pop()
		if e == nil {
			if ss.isFailed() {
				return // answers racing a failure: entries already requeued
			}
			failNode("batch sub-stream: unrequested line")
			return
		}
		select {
		case m.results <- seqLine{seq: e.seq, line: line}:
		case <-m.ctx.Done():
			return
		}
	}
}

// requeueFailed hands a dead node's unanswered entries back to the
// dispatcher, recording the node so the retry skips it.
func (m *batchMux) requeueFailed(node string, entries []*batchEntry) {
	for _, e := range entries {
		e.tried = append(e.tried, node)
		select {
		case m.retryCh <- e:
		case <-m.ctx.Done():
			return
		}
	}
}

func (m *batchMux) fatal(err error) {
	select {
	case m.fatalCh <- err:
	default:
	}
}

// trimSpace trims ASCII whitespace without allocating.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}

package cluster

// The router: a thin HTTP tier that fronts N inanod replicas and
// partitions query load by destination cluster over the consistent-hash
// ring (ring.go). It terminates nothing itself — every answer is a
// replica's answer, forwarded verbatim — so a cluster behind the router
// serves byte-identical results to a single node, just from N tree
// caches instead of one.
//
// Fault model: replicas die (kill -9), drain (rolling atlas rolls), and
// come back. The router health-checks every replica, rebuilds the ring
// over the live set when membership changes, and retries a failed
// replica's work on the ring's next node — in-flight batch pairs
// included (batchmux.go). Replicas keep syncing atlases through their
// own swarm/manifest watchers; a day roll needs nothing from the router.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inano/internal/metrics"
	"inano/internal/netsim"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Nodes are the replica base URLs (e.g. http://127.0.0.1:7354).
	// Membership is static; liveness is dynamic (health checks + passive
	// failure detection decide which members are in the ring). Required.
	Nodes []string
	// ClusterOf resolves a destination prefix to its cluster — the routing
	// table. Point it at the same flat atlas the replicas serve
	// (atlas.Flat.ClusterOf) so routing agrees with the replicas' tree-
	// cache keys. Required.
	ClusterOf func(p netsim.Prefix) (ClusterID, bool)
	// VNodes is the virtual-node count per replica (<= 0 = DefaultVNodes).
	VNodes int
	// HealthInterval is the /healthz poll period (<= 0 = 2s).
	HealthInterval time.Duration
	// Window bounds in-flight /v1/batch lines per client stream
	// (<= 0 = 1024): lines read from the client but not yet answered in
	// order. Also the reassembly buffer bound.
	Window int
	// MaxLineBytes caps one client NDJSON line (<= 0 = 64KiB), matching
	// the replica-side cap.
	MaxLineBytes int
	// Client issues the proxied requests (nil = a keep-alive tuned
	// default). Its timeout must be zero: batch sub-streams live as long
	// as the client stream.
	Client *http.Client
	// Logf logs routing events (nil = silent).
	Logf func(format string, args ...any)
}

// nodeState tracks one configured replica's liveness.
type nodeState struct {
	name string
	up   atomic.Bool
	upG  *metrics.Gauge
}

// Router fronts the replica set. Create with NewRouter, run the health
// loop with Run, mount Handler.
type Router struct {
	cfg     RouterConfig
	client  *http.Client
	reg     *metrics.Registry
	started time.Time

	nodes map[string]*nodeState
	order []string // configured membership, sorted

	ringMu sync.Mutex // serializes ring rebuilds
	ring   atomic.Pointer[Ring]

	requests   map[string]*metrics.Counter
	errors     map[string]*metrics.Counter
	retries    *metrics.Counter
	reshards   *metrics.Counter
	noReplica  *metrics.Counter
	batchLines *metrics.Counter
	batchRetry *metrics.Counter
}

// NewRouter builds a router over cfg.Nodes. All members start healthy —
// the first health pass (Run) corrects that within one interval, and a
// failed proxy corrects it immediately.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one replica")
	}
	if cfg.ClusterOf == nil {
		return nil, fmt.Errorf("cluster: router needs a ClusterOf routing table")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = 64 << 10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	rt := &Router{
		cfg:     cfg,
		client:  client,
		reg:     metrics.NewRegistry(),
		started: time.Now(),
		nodes:   make(map[string]*nodeState),
	}
	for _, n := range cfg.Nodes {
		n = strings.TrimRight(n, "/")
		if n == "" || rt.nodes[n] != nil {
			continue
		}
		st := &nodeState{name: n}
		st.up.Store(true)
		st.upG = rt.reg.NewGauge("inano_router_replica_up",
			"1 if the replica is in the serving ring.", `replica="`+n+`"`)
		st.upG.Set(1)
		rt.nodes[n] = st
		rt.order = append(rt.order, n)
	}
	if len(rt.order) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one replica")
	}
	sort.Strings(rt.order)

	rt.requests = make(map[string]*metrics.Counter)
	rt.errors = make(map[string]*metrics.Counter)
	for _, h := range []string{"query", "batch", "rank", "relay", "healthz", "metrics", "stats"} {
		labels := `handler="` + h + `"`
		rt.requests[h] = rt.reg.NewCounter("inano_router_requests_total",
			"Requests routed, by endpoint.", labels)
		rt.errors[h] = rt.reg.NewCounter("inano_router_errors_total",
			"Requests that failed, by endpoint.", labels)
	}
	rt.retries = rt.reg.NewCounter("inano_router_retries_total",
		"Proxied requests retried on the ring's next node after a replica failure.", "")
	rt.reshards = rt.reg.NewCounter("inano_router_reshards_total",
		"Ring rebuilds caused by replica membership changes.", "")
	rt.noReplica = rt.reg.NewCounter("inano_router_no_replica_total",
		"Requests failed because no live replica remained.", "")
	rt.batchLines = rt.reg.NewCounter("inano_router_batch_lines_total",
		"Batch lines demuxed to replica sub-streams.", "")
	rt.batchRetry = rt.reg.NewCounter("inano_router_batch_retried_total",
		"In-flight batch pairs re-sent to another replica after a failure.", "")
	rt.ring.Store(NewRing(rt.order, cfg.VNodes))
	return rt, nil
}

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *metrics.Registry { return rt.reg }

// Ring returns the current ring over live replicas (empty if none).
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// rebuildRing rebuilds the ring over the currently-up members. Callers
// flip node states first; the mutex only serializes the rebuilds so a
// late rebuild cannot overwrite a newer membership view.
func (rt *Router) rebuildRing() {
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	live := make([]string, 0, len(rt.order))
	for _, n := range rt.order {
		if rt.nodes[n].up.Load() {
			live = append(live, n)
		}
	}
	rt.ring.Store(NewRing(live, rt.cfg.VNodes))
	rt.reshards.Inc()
}

// markDown removes a replica from the ring (no-op if already out).
func (rt *Router) markDown(node, why string) {
	st := rt.nodes[node]
	if st == nil || !st.up.CompareAndSwap(true, false) {
		return
	}
	st.upG.Set(0)
	rt.cfg.Logf("inano-router: replica %s out of ring: %s", node, why)
	rt.rebuildRing()
}

// markUp returns a replica to the ring (no-op if already in).
func (rt *Router) markUp(node string) {
	st := rt.nodes[node]
	if st == nil || !st.up.CompareAndSwap(false, true) {
		return
	}
	st.upG.Set(1)
	rt.cfg.Logf("inano-router: replica %s back in ring", node)
	rt.rebuildRing()
}

// Run health-checks every replica each HealthInterval until ctx is done.
// A replica is live iff /healthz answers 200 within the interval — a
// draining replica answers 503, so starting a drain pulls it from the
// ring on the next pass without dropping its in-flight work.
func (rt *Router) Run(ctx context.Context) {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	rt.healthPass(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.healthPass(ctx)
		}
	}
}

// healthPass probes all replicas concurrently.
func (rt *Router) healthPass(ctx context.Context) {
	var wg sync.WaitGroup
	for _, n := range rt.order {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			if rt.probe(ctx, node) {
				rt.markUp(node)
			} else {
				rt.markDown(node, "health check failed")
			}
		}(n)
	}
	wg.Wait()
}

func (rt *Router) probe(ctx context.Context, node string) bool {
	to := rt.cfg.HealthInterval
	if to > 2*time.Second {
		to = 2 * time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, to)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// keyForDstIP resolves a destination IP string to its ring key through
// the routing table.
func (rt *Router) keyForDstIP(dst string) (uint64, error) {
	ip, err := netsim.ParseIPv4(dst)
	if err != nil {
		return 0, err
	}
	p := netsim.PrefixOf(ip)
	if c, ok := rt.cfg.ClusterOf(p); ok {
		return KeyForCluster(c), nil
	}
	return KeyForPrefix(uint32(p)), nil
}

// Handler returns the router's HTTP surface: the proxied serving
// endpoints plus the router's own /healthz, /metrics and /debug/stats.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.instrument("healthz", rt.handleHealthz))
	mux.HandleFunc("/metrics", rt.instrument("metrics", rt.handleMetrics))
	mux.HandleFunc("/debug/stats", rt.instrument("stats", rt.handleStats))
	mux.HandleFunc("/v1/query", rt.instrument("query", rt.handleQuery))
	mux.HandleFunc("/v1/rank", rt.instrument("rank", rt.handleRank))
	mux.HandleFunc("/v1/relay", rt.instrument("relay", rt.handleRelay))
	mux.HandleFunc("/v1/batch", rt.instrument("batch", rt.handleBatch))
	return mux
}

func (rt *Router) instrument(name string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.requests[name].Inc()
		if err := h(w, r); err != nil {
			rt.errors[name].Inc()
			rt.cfg.Logf("inano-router: %s: %v", name, err)
		}
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	live := 0
	replicas := make(map[string]any, len(rt.order))
	for _, n := range rt.order {
		up := rt.nodes[n].up.Load()
		if up {
			live++
		}
		replicas[n] = map[string]any{"up": up}
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case live == 0:
		status = "down"
		code = http.StatusServiceUnavailable
	case live < len(rt.order):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	return json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"live":     live,
		"replicas": replicas,
		"uptime_s": int64(time.Since(rt.started).Seconds()),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	return rt.reg.WritePrometheus(w)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) error {
	perHandler := make(map[string]any, len(rt.requests))
	for name, c := range rt.requests {
		perHandler[name] = map[string]any{
			"requests": c.Value(),
			"errors":   rt.errors[name].Value(),
		}
	}
	replicas := make(map[string]any, len(rt.order))
	for _, n := range rt.order {
		replicas[n] = map[string]any{"up": rt.nodes[n].up.Load()}
	}
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(map[string]any{
		"uptime_s":      int64(time.Since(rt.started).Seconds()),
		"replicas":      replicas,
		"ring_nodes":    rt.ring.Load().Len(),
		"retries":       rt.retries.Value(),
		"reshards":      rt.reshards.Value(),
		"no_replica":    rt.noReplica.Value(),
		"batch_lines":   rt.batchLines.Value(),
		"batch_retried": rt.batchRetry.Value(),
		"http":          perHandler,
	})
}

// routerError writes a JSON error body, mirroring the replica contract.
func routerError(w http.ResponseWriter, code int, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
	return fmt.Errorf("%s", msg)
}

// retryableStatus reports whether a replica response means "try another
// node": 502/503/504 from a dying or draining replica. Anything else —
// including 4xx, which would fail identically everywhere — is the
// answer.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// proxy forwards one single-shot request to the key's owner, walking the
// ring's fallback sequence on replica failure. body is the replayable
// request body (nil for GET). The replica's response streams back
// verbatim, plus X-Inano-Backend/X-Inano-Attempts headers identifying
// the serving replica and how many nodes were tried.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, key uint64, body []byte) error {
	ring := rt.ring.Load()
	owners := ring.Owners(key, 0)
	attempts := 0
	for _, node := range owners {
		if !rt.nodes[node].up.Load() {
			continue // went down since the ring snapshot
		}
		attempts++
		if attempts > 1 {
			rt.retries.Inc()
		}
		var br io.Reader
		if body != nil {
			br = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			node+r.URL.RequestURI(), br)
		if err != nil {
			return routerError(w, http.StatusInternalServerError, "proxy: %v", err)
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				return routerError(w, http.StatusGatewayTimeout, "proxy: %v", r.Context().Err())
			}
			rt.markDown(node, fmt.Sprintf("proxy error: %v", err))
			continue
		}
		if retryableStatus(resp.StatusCode) {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			rt.markDown(node, fmt.Sprintf("replica answered %d", resp.StatusCode))
			continue
		}
		h := w.Header()
		for _, k := range []string{"Content-Type", "Content-Length", "X-Inano-Peer"} {
			if v := resp.Header.Get(k); v != "" {
				h.Set(k, v)
			}
		}
		h.Set("X-Inano-Backend", node)
		h.Set("X-Inano-Attempts", fmt.Sprintf("%d", attempts))
		w.WriteHeader(resp.StatusCode)
		_, cpErr := io.Copy(w, resp.Body)
		resp.Body.Close()
		return cpErr
	}
	rt.noReplica.Inc()
	return routerError(w, http.StatusServiceUnavailable, "no live replica for this destination")
}

// handleQuery routes one (src, dst) query by destination cluster.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) error {
	var dst string
	var body []byte
	switch r.Method {
	case http.MethodGet:
		dst = r.URL.Query().Get("dst")
	case http.MethodPost:
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, int64(rt.cfg.MaxLineBytes)))
		if err != nil {
			return routerError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		var req struct {
			Dst string `json:"dst"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return routerError(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		dst = req.Dst
	default:
		return routerError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
	key, err := rt.keyForDstIP(dst)
	if err != nil {
		return routerError(w, http.StatusBadRequest, "dst: %v", err)
	}
	return rt.proxy(w, r, key, body)
}

// handleRank routes a candidate-ranking request. A rank answer touches
// one destination tree per candidate; the whole request goes to the
// first candidate's owner so at least that tree is served hot (splitting
// a rank across replicas would cost a round trip per candidate for a
// single sorted answer).
func (rt *Router) handleRank(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return routerError(w, http.StatusMethodNotAllowed, "use POST")
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return routerError(w, http.StatusBadRequest, "reading body: %v", err)
	}
	var req struct {
		Candidates []string `json:"candidates"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return routerError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if len(req.Candidates) == 0 {
		return routerError(w, http.StatusBadRequest, "no candidates")
	}
	key, err := rt.keyForDstIP(req.Candidates[0])
	if err != nil {
		return routerError(w, http.StatusBadRequest, "candidate 0: %v", err)
	}
	return rt.proxy(w, r, key, body)
}

// handleRelay routes a relay selection by its destination cluster.
func (rt *Router) handleRelay(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return routerError(w, http.StatusMethodNotAllowed, "use GET")
	}
	key, err := rt.keyForDstIP(r.URL.Query().Get("dst"))
	if err != nil {
		return routerError(w, http.StatusBadRequest, "dst: %v", err)
	}
	return rt.proxy(w, r, key, nil)
}

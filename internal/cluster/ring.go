package cluster

// The serving-tier half of this package: a consistent-hash ring that
// partitions destination clusters across inanod replicas. The router
// (proxy.go) hashes every query's destination cluster — resolved through
// the same flat atlas the replicas serve — onto this ring, so each
// replica's prediction-tree cache stays hot for exactly its slice of the
// destination space, and a membership change moves only the slice owned
// by the node that joined or left.

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member: enough that three
// replicas split the key space within a few percent of evenly, cheap
// enough that ring rebuilds on membership change are microseconds.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over named nodes. Build one
// with NewRing; membership changes build a new Ring (the router swaps
// them atomically), they never mutate an existing one.
type Ring struct {
	points []ringPoint
	nodes  []string // distinct members, sorted
}

type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// NewRing builds a ring over the given node names with vnodes virtual
// points per node (<= 0 means DefaultVNodes). Duplicate names collapse;
// input order never matters: the same membership set always yields the
// same ring, so independently-configured routers agree on placement.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	distinct := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			distinct = append(distinct, n)
		}
	}
	sort.Strings(distinct)
	r := &Ring{
		nodes:  distinct,
		points: make([]ringPoint, 0, len(distinct)*vnodes),
	}
	for i, n := range distinct {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: pointHash(n, v),
				node: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Colliding points tie-break on node order so placement stays
		// deterministic even then.
		return a.node < b.node
	})
	return r
}

// pointHash places virtual point v of a node on the ring. The mix64
// finalizer matters: raw FNV-1a of short, similar names (replica URLs
// differing in one port digit) clusters badly, skewing shares.
func pointHash(node string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte("#"))
	h.Write([]byte(strconv.Itoa(v)))
	return mix64(h.Sum64())
}

// KeyForCluster derives the ring key for a destination cluster. Cluster
// IDs are small dense integers; the finalizer spreads them over the full
// 64-bit ring so consecutive clusters land on unrelated points.
func KeyForCluster(c ClusterID) uint64 {
	return mix64(uint64(uint32(c)))
}

// KeyForPrefix derives the ring key for a destination prefix the routing
// table cannot place (no cluster attachment). Unplaceable destinations
// are unanswerable everywhere, so any deterministic spread works; the
// high tag keeps the key space disjoint from KeyForCluster.
func KeyForPrefix(p uint32) uint64 {
	return mix64(uint64(p) | 1<<40)
}

// mix64 is splitmix64's finalizer: a cheap bijective scrambler with full
// avalanche, so dense inputs cover the ring uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the ring's members, sorted. The slice is shared; do not
// mutate.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key: the first virtual point at or after
// key, wrapping. Empty ring returns "".
func (r *Ring) Owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := r.search(key)
	return r.nodes[r.points[i].node]
}

// Owners returns up to n distinct nodes for key in ring order: the owner
// first, then each successive fallback. The router walks this sequence
// when a replica fails mid-request, so retries land deterministically.
// n <= 0 or n > Len() returns all members.
func (r *Ring) Owners(key uint64, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	i := r.search(key)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// search returns the index of the first point with hash >= key, wrapping
// to 0 past the end.
func (r *Ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= key
	})
	if i == len(r.points) {
		return 0
	}
	return i
}

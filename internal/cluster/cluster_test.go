package cluster

import (
	"testing"

	"inano/internal/bgpsim"
	"inano/internal/netsim"
	"inano/internal/trace"
)

func observedIfaces(t *testing.T, top *netsim.Topology, seed int64) ([]netsim.IP, *trace.Campaign) {
	t.Helper()
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	m := trace.NewMeter(sim.Day(0), trace.DefaultOptions())
	vps := trace.SelectVantagePoints(top, 10)
	n := len(top.EdgePrefixes)
	if n > 60 {
		n = 60
	}
	c := trace.RunCampaign(m, vps, top.EdgePrefixes[:n])
	var ips []netsim.IP
	for _, tr := range c.Traceroutes {
		for _, h := range tr.Hops {
			if h.IP != 0 && top.RouterPoP(h.IP) >= 0 {
				ips = append(ips, h.IP)
			}
		}
	}
	return ips, c
}

func TestClusterBasics(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(31))
	ips, _ := observedIfaces(t, top, 31)
	if len(ips) == 0 {
		t.Fatal("no observed interfaces")
	}
	c := Cluster(top, ips, DefaultConfig())
	if c.NumClusters == 0 {
		t.Fatal("no clusters")
	}
	for _, ip := range ips {
		id, ok := c.ClusterOf[ip]
		if !ok {
			t.Fatalf("interface %v not clustered", ip)
		}
		if int(id) >= c.NumClusters {
			t.Fatalf("cluster id %d out of range %d", id, c.NumClusters)
		}
	}
	for id := 0; id < c.NumClusters; id++ {
		if c.ClusterAS[id] == 0 {
			t.Fatalf("cluster %d has no AS", id)
		}
	}
}

// Clusters must be pure (never merge interfaces from different PoPs when
// resolution data is correct) but may split PoPs. With imperfect tools, the
// number of clusters is between the true PoP count observed and the
// interface count.
func TestClusterPurityAndSplits(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(32))
	ips, _ := observedIfaces(t, top, 32)
	c := Cluster(top, ips, DefaultConfig())
	// Purity: all interfaces in a cluster share one true PoP.
	popOf := make(map[ClusterID]netsim.PoPID)
	for ip, id := range c.ClusterOf {
		p := top.RouterPoP(ip)
		if prev, ok := popOf[id]; ok && prev != p {
			t.Fatalf("cluster %d mixes PoPs %d and %d", id, prev, p)
		}
		popOf[id] = p
	}
	truePoPs := make(map[netsim.PoPID]bool)
	for ip := range c.ClusterOf {
		truePoPs[top.RouterPoP(ip)] = true
	}
	if c.NumClusters < len(truePoPs) {
		t.Fatalf("fewer clusters (%d) than observed PoPs (%d)", c.NumClusters, len(truePoPs))
	}
	// With the default tool quality, splitting should be bounded.
	if c.NumClusters > 2*len(truePoPs) {
		t.Errorf("clustering too fragmented: %d clusters for %d PoPs", c.NumClusters, len(truePoPs))
	}
}

func TestClusterPerfectToolsRecoverPoPs(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(33))
	ips, _ := observedIfaces(t, top, 33)
	c := Cluster(top, ips, Config{AliasProb: 1, DNSProb: 1})
	truePoPs := make(map[netsim.PoPID]bool)
	for _, ip := range ips {
		truePoPs[top.RouterPoP(ip)] = true
	}
	if c.NumClusters != len(truePoPs) {
		t.Fatalf("perfect tools: %d clusters != %d observed PoPs", c.NumClusters, len(truePoPs))
	}
}

func TestClusterDeterministic(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(34))
	ips, _ := observedIfaces(t, top, 34)
	a := Cluster(top, ips, DefaultConfig())
	b := Cluster(top, ips, DefaultConfig())
	if a.NumClusters != b.NumClusters {
		t.Fatalf("nondeterministic cluster count %d vs %d", a.NumClusters, b.NumClusters)
	}
	for ip, id := range a.ClusterOf {
		if b.ClusterOf[ip] != id {
			t.Fatalf("interface %v cluster differs", ip)
		}
	}
}

func TestASPathOf(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(35))
	_, c := observedIfaces(t, top, 35)
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	day := sim.Day(0)
	checked := 0
	for _, tr := range c.Traceroutes {
		if !tr.Reached {
			continue
		}
		ips := make([]netsim.IP, len(tr.Hops))
		for i, h := range tr.Hops {
			ips[i] = h.IP
		}
		got, ok := ASPathOf(ips, top.PrefixOrigin)
		if !ok {
			continue
		}
		truth, _ := day.ASPath(top.PrefixOrigin[tr.Src], tr.Dst)
		// The observed AS path must be a subsequence of the truth
		// (unresponsive hops can only hide ASes, never invent them).
		ti := 0
		for _, a := range got {
			for ti < len(truth) && truth[ti] != a {
				ti++
			}
			if ti == len(truth) {
				t.Fatalf("observed AS path %v not a subsequence of truth %v", got, truth)
			}
			ti++
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no AS paths extracted")
	}
}

func TestASPathOfRejectsLoops(t *testing.T) {
	pa := map[netsim.Prefix]netsim.ASN{1: 10, 2: 20, 3: 10}
	hops := []netsim.IP{1 << 8, 2 << 8, 3 << 8}
	if _, ok := ASPathOf(hops, pa); ok {
		t.Fatal("AS loop accepted")
	}
}

func TestInferRelationshipsImperfectButUseful(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(36))
	_, c := observedIfaces(t, top, 36)
	var paths [][]netsim.ASN
	for _, tr := range c.Traceroutes {
		ips := make([]netsim.IP, len(tr.Hops))
		for i, h := range tr.Hops {
			ips[i] = h.IP
		}
		if p, ok := ASPathOf(ips, top.PrefixOrigin); ok && len(p) >= 2 {
			paths = append(paths, p)
		}
	}
	if len(paths) < 50 {
		t.Fatalf("only %d AS paths", len(paths))
	}
	rels := InferRelationships(paths)
	if len(rels) == 0 {
		t.Fatal("no relationships inferred")
	}
	acc := RelAccuracy(top, rels)
	if acc < 0.4 {
		t.Errorf("relationship inference accuracy %.2f too low to be useful", acc)
	}
	if acc == 1.0 {
		t.Errorf("relationship inference suspiciously perfect; the model expects errors")
	}
}

func TestStabilizeKeepsSharedIDs(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(38))
	ips, _ := observedIfaces(t, top, 38)
	prev := Cluster(top, ips, DefaultConfig())
	// Simulate the next day seeing most of the same interfaces plus some
	// new ones (here: a subset shifted).
	cur := Cluster(top, ips[:len(ips)*9/10], DefaultConfig())
	st := Stabilize(cur, prev)
	// Every interface present in both days must keep its previous ID.
	agree, total := 0, 0
	for ip, id := range st.ClusterOf {
		if pid, ok := prev.ClusterOf[ip]; ok {
			total++
			if pid == id {
				agree++
			}
		}
	}
	if total == 0 {
		t.Fatal("no shared interfaces")
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Errorf("only %.0f%% of shared interfaces kept their cluster ID", frac*100)
	}
	if st.NumClusters < prev.NumClusters {
		t.Errorf("stabilized space (%d) smaller than previous (%d)", st.NumClusters, prev.NumClusters)
	}
	for _, id := range st.ClusterOf {
		if int(id) >= st.NumClusters {
			t.Fatalf("cluster id %d out of space %d", id, st.NumClusters)
		}
	}
}

func TestStabilizeNilPrev(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(39))
	ips, _ := observedIfaces(t, top, 39)
	cur := Cluster(top, ips, DefaultConfig())
	if got := Stabilize(cur, nil); got != cur {
		t.Fatal("nil prev must be identity")
	}
}

func TestDSU(t *testing.T) {
	d := newDSU(6)
	d.union(0, 1)
	d.union(2, 3)
	d.union(1, 3)
	if d.find(0) != d.find(2) {
		t.Fatal("union chain broken")
	}
	if d.find(4) == d.find(0) || d.find(4) == d.find(5) {
		t.Fatal("spurious merge")
	}
}

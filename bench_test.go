// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (run cmd/inano-eval for the full-scale numbers; these
// run the same generators at a benchmark-friendly scale), plus
// micro-benchmarks for the core library operations.
package inano_test

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/experiments"
	"inano/sim"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
)

// benchLab shares one world across benchmarks; building it is setup, not
// measured work.
func benchLab() *experiments.Lab {
	labOnce.Do(func() {
		lab = experiments.NewLab(experiments.QuickConfig(42))
		// Pre-build both days so per-benchmark timings exclude setup.
		lab.Day(0)
		lab.Day(1)
	})
	return lab
}

func BenchmarkTable2_AtlasSize(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		r := experiments.Table2AtlasSize(l)
		if r.AtlasBytes == 0 {
			b.Fatal("empty atlas")
		}
	}
}

func BenchmarkSec612_VantagePointScaling(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		r := experiments.VantagePointScaling(l, 2, 6, 8)
		if len(r.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig4_PathStationarity(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4PathStationarity(l)
		if r.Total == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkSec622_LossStationarity(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		experiments.LossStationarity(l, 300)
	}
}

func BenchmarkFig5_ASPathAccuracy(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5Accuracy(l)
		if r.Pairs == 0 {
			b.Fatal("no validation pairs")
		}
	}
}

func BenchmarkFig6_LatencyError(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6LatencyError(l)
		if r.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

func BenchmarkFig7_ClosestRanking(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		experiments.Fig7ClosestRanking(l)
	}
}

func BenchmarkFig8_LossError(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8LossError(l)
		if r.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

func BenchmarkFig9a_CDN30KB(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		experiments.Fig9CDN(l, 30_000, 10, 5)
	}
}

func BenchmarkFig9b_CDN1500KB(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		experiments.Fig9CDN(l, 1_500_000, 10, 5)
	}
}

func BenchmarkFig10_VoIPRelay(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		experiments.Fig10VoIP(l, 40)
	}
}

func BenchmarkFig11_DetourFailures(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		experiments.Fig11Detour(l, 3, 5)
	}
}

// --- Micro-benchmarks: the library's hot paths. ---

func benchClient(b *testing.B) (*inano.Client, *experiments.Lab) {
	l := benchLab()
	return inano.FromAtlas(l.Day(0).Atlas), l
}

// BenchmarkQuery_ColdDestinations forces a fresh Dijkstra per query.
func BenchmarkQuery_ColdDestinations(b *testing.B) {
	c, l := benchClient(b)
	dsts := l.Targets
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.QueryPrefix(l.VPs[i%len(l.VPs)], dsts[i%len(dsts)])
	}
}

// BenchmarkQuery_HotDestination measures the cached-tree fast path (batch
// workloads group by destination).
func BenchmarkQuery_HotDestination(b *testing.B) {
	c, l := benchClient(b)
	dst := l.Targets[3]
	c.QueryPrefix(l.VPs[0], dst) // warm the tree cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.QueryPrefix(l.VPs[i%len(l.VPs)], dst)
	}
}

func BenchmarkAtlasEncode(b *testing.B) {
	l := benchLab()
	a := l.Day(0).Atlas
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := a.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkAtlasDecode(b *testing.B) {
	l := benchLab()
	var buf bytes.Buffer
	if err := l.Day(0).Atlas.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atlas.Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaDiffApply(b *testing.B) {
	l := benchLab()
	d0, d1 := l.Day(0).Atlas, l.Day(1).Atlas
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := atlas.Diff(d0, d1)
		cp := d0.Clone()
		cp.Apply(delta)
	}
}

// BenchmarkAtlasBuild measures the full server-side pipeline (clustering,
// link annotation, inference) over one campaign.
func BenchmarkAtlasBuild(b *testing.B) {
	w := sim.NewWorld(sim.Tiny, 7)
	vps := w.VantagePoints(10)
	targets := w.EdgePrefixes()[:60]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := w.Measure(sim.CampaignOptions{Day: 0, VPs: vps, Targets: targets})
		a := c.BuildAtlas()
		if a.NumClusters == 0 {
			b.Fatal("empty atlas")
		}
	}
}

// BenchmarkQuery_Concurrent measures aggregate query throughput with one
// goroutine per core hammering a shared client — the serving shape of a
// relay or tracker answering many peers at once. Thanks to the sharded
// tree cache, throughput should scale with cores instead of serializing
// on a cache lock.
func BenchmarkQuery_Concurrent(b *testing.B) {
	c, l := benchClient(b)
	// Warm the trees so the parallel section measures lookup throughput.
	for i := 0; i < len(l.Targets); i++ {
		c.QueryPrefix(l.VPs[i%len(l.VPs)], l.Targets[i])
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(ctr.Add(1000003)) // distinct stride per goroutine
		for pb.Next() {
			c.QueryPrefix(l.VPs[i%len(l.VPs)], l.Targets[i%len(l.Targets)])
			i++
		}
	})
}

// sharedDstPairs builds a batch of nPairs queries spread over kDst
// destinations — the CDN/VoIP shape where many sources rank few replicas.
func sharedDstPairs(l *experiments.Lab, nPairs, kDst int) [][2]inano.Prefix {
	pairs := make([][2]inano.Prefix, nPairs)
	for i := range pairs {
		pairs[i] = [2]inano.Prefix{l.VPs[i%len(l.VPs)], l.Targets[i%kDst]}
	}
	return pairs
}

// BenchmarkQueryBatch_SharedDestination answers 256 queries over 4
// destinations with one QueryBatch per iteration, cold trees each time:
// the batch builds each destination tree once (fanned across cores) and
// reuses it for every source. Compare against
// BenchmarkQueryBatch_SequentialBaseline, the same workload as N
// sequential Query calls.
func BenchmarkQueryBatch_SharedDestination(b *testing.B) {
	l := benchLab()
	pairs := sharedDstPairs(l, 256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := inano.FromAtlas(l.Day(0).Atlas) // fresh engine: trees are cold
		b.StartTimer()
		if _, err := c.QueryPrefixPairsContext(context.Background(), pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBatch_SequentialBaseline is the loop QueryBatch replaces.
func BenchmarkQueryBatch_SequentialBaseline(b *testing.B) {
	l := benchLab()
	pairs := sharedDstPairs(l, 256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := inano.FromAtlas(l.Day(0).Atlas)
		b.StartTimer()
		for _, p := range pairs {
			c.QueryPrefix(p[0], p[1])
		}
	}
}

// BenchmarkQueryBatch_ManyDestinations stresses the worker-pool fan-out:
// one source querying many distinct cold destinations, so every group is
// an independent Dijkstra that can run on its own core.
func BenchmarkQueryBatch_ManyDestinations(b *testing.B) {
	l := benchLab()
	k := len(l.Targets)
	if k > 32 {
		k = 32
	}
	dsts := make([]inano.IP, k)
	for i := range dsts {
		dsts[i] = l.Targets[i].HostIP()
	}
	src := l.VPs[0].HostIP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := inano.FromAtlas(l.Day(0).Atlas)
		b.StartTimer()
		c.QueryBatch(src, dsts)
	}
}

// Ablation bench: per-destination tree reuse (DESIGN.md decision 5). The
// cold benchmark above quantifies the other side.
func BenchmarkAblation_BatchByDestination(b *testing.B) {
	c, l := benchClient(b)
	pairs := make([][2]inano.Prefix, 0, 64)
	for i := 0; i < 64; i++ {
		pairs = append(pairs, [2]inano.Prefix{l.VPs[i%len(l.VPs)], l.Targets[i%4]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			c.QueryPrefix(p[0], p[1])
		}
	}
}
